#include "runtime/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/assert.hpp"
#include "util/error.hpp"

namespace nab::runtime {

json json::object() {
  json j;
  j.kind_ = kind::object;
  return j;
}

json json::array() {
  json j;
  j.kind_ = kind::array;
  return j;
}

json json::str(std::string v) {
  json j;
  j.kind_ = kind::string;
  j.string_ = std::move(v);
  return j;
}

json json::num(double v) {
  json j;
  j.kind_ = kind::number_real;
  j.real_ = v;
  return j;
}

json json::num(std::int64_t v) {
  json j;
  j.kind_ = kind::number_int;
  j.int_ = v;
  return j;
}

json json::boolean(bool v) {
  json j;
  j.kind_ = kind::boolean;
  j.bool_ = v;
  return j;
}

json& json::set(std::string key, json value) {
  NAB_ASSERT(kind_ == kind::object, "json::set on a non-object");
  members_.emplace_back(std::move(key), std::move(value));
  return *this;
}

json& json::push(json value) {
  NAB_ASSERT(kind_ == kind::array, "json::push on a non-array");
  elements_.push_back(std::move(value));
  return *this;
}

namespace {

void write_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void write_real(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan; null is the convention
    out += "null";
    return;
  }
  // Shortest round-trippable decimal would need to_chars; %.17g is longer
  // but equally deterministic, which is what matters here.
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void indent(std::string& out, int depth) {
  out.append(static_cast<std::size_t>(2 * depth), ' ');
}

}  // namespace

void json::write(std::string& out, int depth) const {
  switch (kind_) {
    case kind::null:
      out += "null";
      break;
    case kind::string:
      write_escaped(out, string_);
      break;
    case kind::number_int:
      out += std::to_string(int_);
      break;
    case kind::number_real:
      write_real(out, real_);
      break;
    case kind::boolean:
      out += bool_ ? "true" : "false";
      break;
    case kind::object: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        indent(out, depth + 1);
        write_escaped(out, members_[i].first);
        out += ": ";
        members_[i].second.write(out, depth + 1);
        if (i + 1 < members_.size()) out.push_back(',');
        out.push_back('\n');
      }
      indent(out, depth);
      out.push_back('}');
      break;
    }
    case kind::array: {
      if (elements_.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        indent(out, depth + 1);
        elements_[i].write(out, depth + 1);
        if (i + 1 < elements_.size()) out.push_back(',');
        out.push_back('\n');
      }
      indent(out, depth);
      out.push_back(']');
      break;
    }
  }
}

std::string json::dump() const {
  std::string out;
  write(out, 0);
  out.push_back('\n');
  return out;
}

// Seeds are full-width uint64; JSON numbers are lossy there (2^53 mantissa,
// and int64 casts turn the high bit into a sign), so they travel as hex.
std::string hex_seed(std::uint64_t seed) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "0x%016llx", static_cast<unsigned long long>(seed));
  return buf;
}

std::vector<std::pair<std::string, double>> wall_by_phase_of(
    const std::vector<obs::span_record>& spans) {
  // Phase rows are the "instance" span's direct children plus any top-level
  // span that is not an instance (e.g. the session constructor's
  // connectivity fill). Deeper spans (claim sub-rounds, certify under
  // refresh_graph) are already counted inside their parent phase.
  std::map<std::string, double> acc;
  for (const obs::span_record& s : spans) {
    if (s.depth > 1 || s.name == "instance") continue;
    acc[s.name] += s.wall_end - s.wall_begin;
  }
  return {acc.begin(), acc.end()};  // std::map: sorted by name
}

json run_record::to_json(bool include_timing) const {
  json corrupt_ids = json::array();
  for (int v : corrupt) corrupt_ids.push(json::num(v));
  json j = json::object();
  j.set("run_index", json::num(run_index))
      .set("scenario", json::str(scenario))
      .set("family", json::str(family))
      .set("seed", json::str(hex_seed(seed)))
      .set("topology", json::str(topology))
      .set("nodes", json::num(nodes))
      .set("f", json::num(f))
      .set("adversary", json::str(adversary))
      .set("propagation", json::str(propagation))
      .set("flag_protocol", json::str(flag_protocol))
      .set("claim_backend", json::str(claim_backend))
      .set("loss", json::str(loss))
      .set("instances", json::num(instances))
      .set("words", json::num(words))
      .set("corrupt", std::move(corrupt_ids))
      .set("gamma", json::num(gamma))
      .set("rho", json::num(rho))
      .set("sim_elapsed", json::num(sim_elapsed))
      .set("bits_broadcast", json::num(bits_broadcast))
      .set("throughput", json::num(throughput))
      .set("tau_mean", json::num(tau_mean))
      .set("dispute_phases", json::num(dispute_phases))
      .set("disputes", json::num(disputes))
      .set("convictions", json::num(convictions))
      .set("mismatch_instances", json::num(mismatch_instances))
      .set("phase1_only_instances", json::num(phase1_only_instances))
      .set("default_outcome_instances", json::num(default_outcome_instances))
      .set("dc1_claim_bits", json::num(dc1_claim_bits))
      .set("dc1_fallbacks", json::num(dc1_fallbacks))
      .set("gf_ops", json::num(gf_ops))
      .set("gf_axpy_words", json::num(gf_axpy_words))
      .set("gf_scale_words", json::num(gf_scale_words))
      .set("gf_mul_ops", json::num(gf_mul_ops))
      .set("gf_rows_eliminated", json::num(gf_rows_eliminated))
      .set("cert_prefix_pushes", json::num(cert_prefix_pushes))
      .set("cert_prefix_pops", json::num(cert_prefix_pops))
      .set("cert_ghost_repushes", json::num(cert_ghost_repushes))
      .set("cert_subgraphs", json::num(cert_subgraphs))
      .set("cert_loo_downdates", json::num(cert_loo_downdates))
      .set("cache_lookups", json::num(cache_lookups))
      .set("plan_safety_checks", json::num(plan_safety_checks))
      .set("plan_flow_augmentations", json::num(plan_flow_augmentations))
      .set("route_pairs", json::num(route_pairs))
      .set("route_flow_augmentations", json::num(route_flow_augmentations))
      .set("claim_echoes", json::num(claim_echoes))
      .set("claim_readys", json::num(claim_readys))
      .set("link_drops", json::num(link_drops))
      .set("retransmits", json::num(retransmits))
      .set("burst_spans", json::num(burst_spans))
      .set("retry_budget_exhaustions", json::num(retry_budget_exhaustions))
      .set("margin_quorum_slack", json::num(margin_quorum_slack))
      .set("margin_hold_surplus", json::num(margin_hold_surplus))
      .set("margin_dispute_headroom", json::num(margin_dispute_headroom))
      .set("margin_retry_headroom", json::num(margin_retry_headroom))
      .set("pipeline_depth", json::num(pipeline_depth))
      .set("pipeline_speedup", json::num(pipeline_speedup))
      .set("agreement", json::boolean(agreement))
      .set("validity", json::boolean(validity))
      .set("dispute_sound", json::boolean(dispute_sound))
      .set("conviction_sound", json::boolean(conviction_sound))
      .set("dispute_bound", json::boolean(dispute_bound))
      .set("ok", json::boolean(ok()));
  if (include_timing) {
    // One nested object so cross-jobs document diffing (the determinism CI)
    // can drop the whole machine-set layer by stripping a single key.
    json wall = json::object();
    for (const auto& [phase, seconds] : timing.wall_by_phase)
      wall.set(phase, json::num(seconds));
    json t = json::object();
    t.set("wall_seconds_by_phase", std::move(wall))
        .set("cache_hits", json::num(timing.cache_hits))
        .set("cache_misses", json::num(timing.cache_misses))
        .set("arena_allocs", json::num(timing.arena_allocs))
        .set("arena_pool_hits", json::num(timing.arena_pool_hits));
    j.set("timing", std::move(t));
  }
  return j;
}

sweep_summary summarize(const std::vector<run_record>& records) {
  sweep_summary s;
  s.runs = static_cast<int>(records.size());
  if (records.empty()) return s;
  double sum = 0.0;
  s.min_throughput = records.front().throughput;
  s.max_throughput = records.front().throughput;
  for (const run_record& r : records) {
    if (!r.ok()) ++s.failed_runs;
    s.total_instances += r.instances;
    s.total_dispute_phases += r.dispute_phases;
    sum += r.throughput;
    s.min_throughput = std::min(s.min_throughput, r.throughput);
    s.max_throughput = std::max(s.max_throughput, r.throughput);
  }
  s.mean_throughput = sum / static_cast<double>(records.size());
  return s;
}

json sweep_document(const std::string& sweep_name, std::uint64_t base_seed, int jobs,
                    const std::vector<run_record>& records, double wall_seconds,
                    const std::map<std::string, double>* family_wall_seconds) {
  const sweep_summary s = summarize(records);
  json runs = json::array();
  // Per-run timing rides with the wall keys: omitted in determinism mode
  // (wall_seconds < 0), present in normal reporting.
  for (const run_record& r : records) runs.push(r.to_json(wall_seconds >= 0.0));
  json summary = json::object();
  summary.set("runs", json::num(s.runs))
      .set("failed_runs", json::num(s.failed_runs))
      .set("total_instances", json::num(s.total_instances))
      .set("total_dispute_phases", json::num(s.total_dispute_phases))
      .set("min_throughput", json::num(s.min_throughput))
      .set("mean_throughput", json::num(s.mean_throughput))
      .set("max_throughput", json::num(s.max_throughput));
  json doc = json::object();
  doc.set("bench", json::str("runtime"))
      .set("sweep", json::str(sweep_name))
      .set("base_seed", json::str(hex_seed(base_seed)));
  // jobs and wall time describe the machine, not the workload: callers that
  // need cross-thread-count comparability (the determinism contract) pass
  // wall_seconds < 0 and compare the resulting documents byte for byte.
  if (wall_seconds >= 0.0) {
    doc.set("jobs", json::num(jobs));
    doc.set("wall_seconds", json::num(wall_seconds));
    if (family_wall_seconds != nullptr) {
      json by_family = json::object();
      for (const auto& [family, wall] : *family_wall_seconds)
        by_family.set(family, json::num(wall));
      doc.set("wall_seconds_by_family", std::move(by_family));
    }
  }
  doc.set("summary", std::move(summary)).set("runs", std::move(runs));
  return doc;
}

json trace_document(const std::string& sweep_name, std::uint64_t base_seed,
                    const std::vector<run_record>& records) {
  json runs = json::array();
  for (const run_record& r : records) {
    if (r.traffic.empty()) continue;
    const auto n = static_cast<std::size_t>(r.nodes);
    NAB_ASSERT(r.traffic.size() == n * n, "traffic matrix shape mismatch");
    json links = json::array();
    for (std::size_t u = 0; u < n; ++u)
      for (std::size_t v = 0; v < n; ++v) {
        const std::uint64_t bits = r.traffic[u * n + v];
        if (bits == 0) continue;
        json link = json::object();
        link.set("from", json::num(static_cast<std::int64_t>(u)))
            .set("to", json::num(static_cast<std::int64_t>(v)))
            .set("bits", json::num(bits));
        links.push(std::move(link));
      }
    json run = json::object();
    run.set("run_index", json::num(r.run_index))
        .set("scenario", json::str(r.scenario))
        .set("nodes", json::num(r.nodes))
        .set("dc1_claim_bits", json::num(r.dc1_claim_bits))
        .set("links", std::move(links));
    runs.push(std::move(run));
  }
  json doc = json::object();
  doc.set("bench", json::str("runtime-trace"))
      .set("sweep", json::str(sweep_name))
      .set("base_seed", json::str(hex_seed(base_seed)))
      .set("runs", std::move(runs));
  return doc;
}

json timeline_document(const std::string& sweep_name, std::uint64_t base_seed,
                       const std::vector<run_record>& records) {
  json events = json::array();
  for (const run_record& r : records) {
    if (r.timing.spans.empty()) continue;
    // Chrome-trace metadata: each run renders as its own process, labelled
    // with the scenario so the timeline is navigable without the records.
    {
      json args = json::object();
      args.set("name", json::str("run " + std::to_string(r.run_index) + ": " +
                                 r.scenario));
      json meta = json::object();
      meta.set("name", json::str("process_name"))
          .set("ph", json::str("M"))
          .set("pid", json::num(r.run_index))
          .set("tid", json::num(0))
          .set("args", std::move(args));
      events.push(std::move(meta));
    }
    for (const obs::span_record& s : r.timing.spans) {
      json args = json::object();
      args.set("depth", json::num(s.depth));
      if (s.tau_begin >= 0.0) {
        args.set("tau_begin", json::num(s.tau_begin));
        args.set("tau_end", json::num(s.tau_end));
      }
      json ev = json::object();
      ev.set("name", json::str(s.name))
          .set("ph", json::str("X"))
          .set("ts", json::num(s.wall_begin * 1e6))
          .set("dur", json::num((s.wall_end - s.wall_begin) * 1e6))
          .set("pid", json::num(r.run_index))
          .set("tid", json::num(0))
          .set("args", std::move(args));
      events.push(std::move(ev));
    }
  }
  json doc = json::object();
  doc.set("bench", json::str("runtime-timeline"))
      .set("sweep", json::str(sweep_name))
      .set("base_seed", json::str(hex_seed(base_seed)))
      .set("displayTimeUnit", json::str("ms"))
      .set("traceEvents", std::move(events));
  return doc;
}

void write_json_file(const std::string& path, const json& doc) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw error("cannot open " + path + " for writing");
  const std::string text = doc.dump();
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  out.flush();  // surface disk-full/quota errors now, not in the destructor
  if (!out) throw error("short write to " + path);
}

}  // namespace nab::runtime
