#include "runtime/executor.hpp"

#include <algorithm>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace nab::runtime {

namespace {

/// A mutex-guarded work deque. NAB shard bodies run whole protocol sessions
/// (milliseconds to seconds), so queue-operation cost is irrelevant — a lock
/// per pop/steal buys straightforward correctness over a lock-free Chase-Lev
/// structure that would never pay for itself here.
class shard_deque {
 public:
  void push_back(std::size_t v) {
    std::lock_guard<std::mutex> lock(mu_);
    items_.push_back(v);
  }

  std::optional<std::size_t> pop_back() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    const std::size_t v = items_.back();
    items_.pop_back();
    return v;
  }

  std::optional<std::size_t> steal_front() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    const std::size_t v = items_.front();
    items_.pop_front();
    return v;
  }

 private:
  std::mutex mu_;
  std::deque<std::size_t> items_;
};

}  // namespace

void parallel_for_each_index(int jobs, std::size_t count,
                             const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (jobs <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  const std::size_t workers =
      std::min(static_cast<std::size_t>(jobs), count);

  std::vector<shard_deque> deques(workers);
  for (std::size_t i = 0; i < count; ++i) deques[i % workers].push_back(i);

  // First-failing-index exception wins, so error reporting is as
  // deterministic as the results themselves.
  std::mutex error_mu;
  std::exception_ptr first_error;
  std::size_t first_error_index = count;

  auto worker_body = [&](std::size_t me) {
    for (;;) {
      std::optional<std::size_t> task = deques[me].pop_back();
      for (std::size_t k = 1; !task && k < workers; ++k)
        task = deques[(me + k) % workers].steal_front();
      if (!task) return;  // every deque empty: sweep drained
      try {
        fn(*task);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (*task < first_error_index) {
          first_error_index = *task;
          first_error = std::current_exception();
        }
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w)
    threads.emplace_back(worker_body, w);
  for (std::thread& t : threads) t.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace nab::runtime
