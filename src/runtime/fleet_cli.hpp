#pragma once

#include <cstdint>
#include <string>
#include <vector>

/// Argument parsing for the `fleet` driver (examples/fleet.cpp), extracted
/// into the library so the parse paths are unit-testable: unknown flags are
/// rejected with an error naming the flag (a typo like `--sced` must never
/// silently run the default sweep), numeric flags parse strictly (atoll
/// would turn "1e5" into 1 and stamp the wrong seed into
/// BENCH_runtime.json), and every failure is a thrown nab::error the driver
/// turns into a usage message — never a silent fallback.

namespace nab::runtime {

/// Everything the fleet CLI can configure. One struct for both modes; the
/// hunt fields are ignored unless `hunt` is set.
struct fleet_options {
  bool list = false;           ///< --list: print the preset catalog and exit
  std::string scenarios = "all";
  int jobs = 1;
  std::uint64_t seed = 1;
  std::string json_path = "BENCH_runtime.json";
  std::string trace_path;      ///< --trace FILE (empty = no traffic capture)
  std::string timeline_path;   ///< --timeline FILE (empty = no span capture)
  /// --loss SPEC: overrides every selected scenario's link-fault axis (a
  /// sim::parse_loss_spec preset name or p_good,p_bad,p_g2b,p_b2g tuple;
  /// "none" strips loss). Empty = keep each scenario's own loss value.
  /// Validated at parse time — unknown/malformed specs are rejected by name.
  std::string loss;
  bool quiet = false;

  // --- fleet --hunt: coverage-guided adversary search (runtime/hunt.hpp) ---
  bool hunt = false;
  /// Families whose (topology, f) pairs become hunt contexts. Deliberately
  /// NOT --scenario: a hunt wants the small fault-tolerant presets, not
  /// "all" with its n = 64 perf scaling points.
  std::string hunt_families = "complete-f2,ablation-claims";
  int budget = 2000;           ///< --budget: total hunt evaluations
  int population = 12;         ///< --population: genomes per generation
  std::uint64_t hunt_words = 16;
  int hunt_instances = 0;      ///< 0 = each family's default
  std::string corpus_path = "HUNT_corpus.json";  ///< "-" = don't write

  bool operator==(const fleet_options&) const = default;
};

/// The usage text the driver prints on a parse error.
std::string fleet_usage();

/// Parses fleet arguments (argv[1..], shell-split). Throws nab::error on an
/// unknown flag (naming it), a flag missing its value, or a malformed
/// number; never exits and never silently ignores input.
fleet_options parse_fleet_args(const std::vector<std::string>& args);

/// Strict non-negative integer parse for flag values. Throws nab::error
/// (naming `flag`) on empty input, sign, trailing junk, or overflow.
std::uint64_t parse_u64_flag(const std::string& flag, const std::string& text);

/// parse_u64_flag, additionally bounded to [0, 1'000'000].
int parse_int_flag(const std::string& flag, const std::string& text);

}  // namespace nab::runtime
