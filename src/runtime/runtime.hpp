#pragma once

/// Umbrella header for the parallel scenario runtime: declarative scenario
/// registry (scenario.hpp), work-stealing sharded executor (executor.hpp),
/// per-run execution with invariant checking (runner.hpp), the JSON metrics
/// sink (metrics.hpp), the coverage-guided adversary search (hunt.hpp), and
/// the fleet CLI parser (fleet_cli.hpp).
///
/// Quick start:
///   #include "runtime/runtime.hpp"
///   auto sweep = nab::runtime::select_scenarios("all");
///   auto records = nab::runtime::run_sweep(sweep, /*seed=*/1, /*jobs=*/8);
///   nab::runtime::write_json_file(
///       "BENCH_runtime.json",
///       nab::runtime::sweep_document("all", 1, 8, records, wall_seconds));
///
/// Contract: `records` is bit-identical for every `jobs` value — every shard
/// owns its session/network/rng and every seed derives from (sweep seed, run
/// index) by splitmix64, never from scheduling.

#include "runtime/executor.hpp"
#include "runtime/fleet_cli.hpp"
#include "runtime/hunt.hpp"
#include "runtime/metrics.hpp"
#include "runtime/runner.hpp"
#include "runtime/scenario.hpp"
