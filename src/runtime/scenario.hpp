#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "bb/broadcast.hpp"
#include "bb/claim_bcast.hpp"
#include "core/adversary.hpp"
#include "core/phase1.hpp"
#include "graph/digraph.hpp"
#include "util/rng.hpp"

namespace nab::runtime {

/// Which generator builds a scenario's topology.
enum class topology_kind {
  complete,
  fig1a,            ///< the paper's Figure 1(a)
  fig1b,            ///< Figure 1(b) (post-dispute)
  fig2,             ///< Figure 2(a)
  ring,
  erdos_renyi,
  random_regular,
  hypercube,        ///< 2^dim nodes, dim = param_a
  clustered_wan,    ///< param_a clusters of param_b nodes
  dumbbell,         ///< two fat clusters, thin bridges (capacity skew)
  weak_link,        ///< complete graph with one capacity-1 link (skew)
  path_of_cliques,  ///< param_a hops of param_b-cliques (pipelining regime)
};

/// Declarative topology description, expanded to a digraph per run. The
/// params are generator-specific (documented per kind above); random
/// generators draw from the run's derived rng so every shard is
/// reproducible in isolation.
struct topology_spec {
  topology_kind kind = topology_kind::complete;
  int n = 4;                      ///< node count (kinds with a free n)
  int param_a = 0;                ///< dim / clusters / hops / degree
  int param_b = 0;                ///< cluster size
  graph::capacity_t cap_lo = 1;   ///< uniform capacity, or fat side of a skew
  graph::capacity_t cap_hi = 1;   ///< upper capacity for random draws
  double p = 0.5;                 ///< Erdos-Renyi link probability

  bool operator==(const topology_spec&) const = default;
};

/// Materializes the spec. Random kinds consume `rand`; deterministic kinds
/// ignore it. The result is NOT guaranteed to satisfy NAB's f-dependent
/// preconditions — the runner validates and (for random kinds) retries with
/// a reseeded generator.
graph::digraph build_topology(const topology_spec& spec, rng& rand);

/// How many nodes the spec expands to (without building it).
int topology_nodes(const topology_spec& spec);

/// Adversary strategies the registry can name (factories over
/// core/strategies.hpp).
enum class adversary_kind {
  honest,        ///< no attack (corrupt set may still be non-empty)
  p1_garble,     ///< phase1_corruptor
  equivocate,    ///< equivocating_source (source must be corrupt)
  p2_lie,        ///< phase2_liar
  false_flag,    ///< false_flagger
  stealth,       ///< stealth_disputer (realizes the f(f+1) dispute bound)
  dispute_farm,  ///< dispute_farmer
  chaos,         ///< chaos_adversary (seeded fuzzing across all hooks)
  hunted,        ///< genome_adversary replayed from scenario::genome (hunt.hpp)
};

/// Instantiates the strategy (nullptr for honest). `seed` feeds the seeded
/// strategies; `minority` parameterizes the equivocating source; `genome` is
/// the serialized hunt_genome a `hunted` scenario replays (required there,
/// ignored everywhere else — see runtime/hunt.hpp).
std::unique_ptr<core::nab_adversary> make_adversary(adversary_kind kind,
                                                    std::uint64_t seed,
                                                    graph::node_id minority_victim,
                                                    std::string_view genome = {});

/// One fully concrete, runnable configuration — the unit of fleet work.
struct scenario {
  std::string name;     ///< unique within a sweep (family + axis values)
  std::string family;   ///< registry preset it expanded from
  topology_spec topology;
  int f = 1;
  graph::node_id source = 0;
  adversary_kind adversary = adversary_kind::honest;
  core::propagation_mode propagation = core::propagation_mode::cut_through;
  bb::bb_protocol flag_protocol = bb::bb_protocol::eig;
  /// Phase-3 DC1 claim-dissemination backend (bb/claim_bcast.hpp).
  bb::claim_backend claim_backend = bb::claim_backend::eig;
  int instances = 4;              ///< NAB instances per run (amortization)
  std::uint64_t words = 64;       ///< 16-bit words per input (L = 16*words)
  bool rotate_sources = false;
  /// Certification cost gate handed to session_config (GF-op estimate above
  /// which the session trusts Theorem 1 instead of certifying). The n = 64
  /// presets raise it so certification actually runs at their Omega_k sizes.
  std::uint64_t certify_cost_limit = 1'000'000'000;
  /// Serialized hunt_genome (hunt_genome::to_params form) when `adversary`
  /// is `hunted`; empty otherwise. The registry's hunted_* presets pin the
  /// worst-case genomes `fleet --hunt` found, so tier-1 replays them as
  /// regression tests forever.
  std::string genome;
  /// Arena-pool the per-instance allocations (core::session_config). Both
  /// settings must produce byte-identical records — the determinism tests
  /// sweep this axis; presets leave it on.
  bool pool_memory = true;
  /// Link-fault process (sim::link_faults): "none" = perfect links (no model
  /// attached), otherwise a spec sim::parse_loss_spec accepts — a preset
  /// name ("zero", "light", "bursty", "heavy") or a custom
  /// "p_good,p_bad,p_g2b,p_b2g" tuple. Stored as the verbatim spec string
  /// so scenario_to_params round-trips exactly.
  std::string loss = "none";

  bool operator==(const scenario&) const = default;
};

/// A registry preset: named axes whose cartesian product expands into
/// concrete scenarios. Axes left at size 1 contribute nothing to the
/// product, so a family can be anything from a single pinned configuration
/// to a hundreds-strong sweep.
struct scenario_family {
  std::string name;
  std::string description;
  std::vector<topology_spec> topologies;
  std::vector<int> fault_budgets = {1};
  std::vector<adversary_kind> adversaries = {adversary_kind::honest};
  std::vector<std::uint64_t> word_counts = {64};
  std::vector<core::propagation_mode> propagations = {
      core::propagation_mode::cut_through};
  std::vector<bb::bb_protocol> flag_protocols = {bb::bb_protocol::eig};
  /// The claim-backends axis: which DC1 engines the family sweeps.
  std::vector<bb::claim_backend> claim_backends = {bb::claim_backend::eig};
  /// The loss axis: link-fault specs the family sweeps ("none" = clean).
  std::vector<std::string> losses = {"none"};
  int instances = 4;
  bool rotate_sources = false;
  std::uint64_t certify_cost_limit = 1'000'000'000;
  /// Serialized hunt_genome for families whose adversary axis includes
  /// `hunted` (the promoted hunted_* presets); copied into every expanded
  /// scenario.
  std::string genome;

  /// Cartesian product over all axes, deterministic order (topology-major).
  std::vector<scenario> expand() const;
};

/// The built-in preset catalog: every Fig-1/Fig-2/ablation configuration
/// plus the scaling topologies (random regular, hypercube, clustered WAN,
/// capacity skews). Stable order; names unique.
const std::vector<scenario_family>& registry();

/// Lookup by family name (nullptr when absent).
const scenario_family* find_family(std::string_view name);

/// Expands a comma-separated family list ("all" = whole registry) into the
/// concrete sweep. Throws nab::error on an unknown name.
std::vector<scenario> select_scenarios(std::string_view names);

// --- string round-trip (JSON fields, CLI parsing, registry tests) ---

std::string to_string(topology_kind k);
std::string to_string(adversary_kind k);
std::string to_string(core::propagation_mode m);
std::string to_string(bb::bb_protocol p);
std::string to_string(bb::claim_backend b);
topology_kind topology_kind_from_string(std::string_view s);
adversary_kind adversary_kind_from_string(std::string_view s);
core::propagation_mode propagation_from_string(std::string_view s);
bb::bb_protocol flag_protocol_from_string(std::string_view s);
bb::claim_backend claim_backend_from_string(std::string_view s);

/// Flat key->value encoding of every scenario field, suitable for logs and
/// exact reconstruction. scenario_from_params(scenario_to_params(s)) == s.
std::map<std::string, std::string> scenario_to_params(const scenario& s);
scenario scenario_from_params(const std::map<std::string, std::string>& params);

}  // namespace nab::runtime
