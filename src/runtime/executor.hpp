#pragma once

#include <cstdint>
#include <functional>

namespace nab::runtime {

/// splitmix64 (Steele, Lea & Flood) — the standard 64-bit seed-derivation
/// mixer. Used to derive every per-shard seed from (sweep seed, run index),
/// NEVER from wall clock or thread identity, so a sweep's randomness is a
/// pure function of its inputs regardless of how it is scheduled.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// The seed shard `index` of a sweep runs with. Two mixer rounds decorrelate
/// adjacent indices and distinct base seeds completely.
constexpr std::uint64_t derive_run_seed(std::uint64_t base_seed, std::uint64_t index) {
  return splitmix64(splitmix64(base_seed) ^ splitmix64(index + 0x51ed2701ULL));
}

/// Executes fn(0) .. fn(count - 1) on `jobs` worker threads with work
/// stealing: indices are dealt round-robin into per-worker deques; a worker
/// pops its own deque from the back (LIFO, cache-warm) and steals from the
/// fronts of others when empty (FIFO, takes the oldest — the classic
/// Blumofe/Leiserson discipline). Each index runs exactly once, on exactly
/// one thread. `jobs <= 1` runs inline on the calling thread.
///
/// The function must be safe to call concurrently for distinct indices;
/// result ordering/determinism is the CALLER's job (write to slot `index` of
/// a pre-sized vector — never append under a lock).
///
/// Exceptions thrown by `fn` are captured; the first one (lowest index) is
/// rethrown on the calling thread after every worker has drained.
void parallel_for_each_index(int jobs, std::size_t count,
                             const std::function<void(std::size_t)>& fn);

}  // namespace nab::runtime
