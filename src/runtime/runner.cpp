#include "runtime/runner.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <optional>

#include "core/omega_cache.hpp"
#include "core/pipeline.hpp"
#include "core/session.hpp"
#include "obs/obs.hpp"
#include "runtime/executor.hpp"
#include "runtime/hunt.hpp"
#include "sim/link_faults.hpp"
#include "sim/trace.hpp"
#include "util/error.hpp"

namespace nab::runtime {

namespace {

/// Picks the run's corrupt set: f distinct nodes, drawn deterministically
/// from the run rng. Equivocation only bites when the source is corrupt, so
/// that strategy pins the source into the set (as may a hunted genome via
/// its corrupt_source gene); every other strategy keeps the source honest so
/// validity stays a falsifiable invariant.
std::vector<graph::node_id> pick_corrupt(const scenario& s, int n, rng& rand,
                                         bool pin_source) {
  std::vector<graph::node_id> corrupt;
  if (s.f == 0) return corrupt;
  if (pin_source) corrupt.push_back(s.source);
  std::vector<graph::node_id> pool;
  for (graph::node_id v = 0; v < n; ++v)
    if (v != s.source) pool.push_back(v);
  while (corrupt.size() < static_cast<std::size_t>(s.f) && !pool.empty()) {
    const std::size_t i = rand.below(pool.size());
    corrupt.push_back(pool[i]);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(i));
  }
  std::sort(corrupt.begin(), corrupt.end());
  return corrupt;
}

/// Builds a topology satisfying NAB's preconditions (n >= 3f+1,
/// connectivity >= 2f+1). Deterministic generators must satisfy them
/// outright (a preset bug otherwise); random generators get up to 32
/// reseeded attempts — attempt count feeds the derivation, not the clock,
/// so the result is still a pure function of the run seed.
graph::digraph build_valid_topology(const scenario& s, std::uint64_t run_seed) {
  for (int attempt = 0; attempt < 32; ++attempt) {
    rng topo_rand(splitmix64(run_seed ^ static_cast<std::uint64_t>(attempt)));
    graph::digraph g = build_topology(s.topology, topo_rand);
    const int n = g.universe();
    if (n >= 3 * s.f + 1 &&
        (s.f == 0 ||
         core::omega_cache::instance().connectivity_at_least(g, 2 * s.f + 1)))
      return g;
    const bool randomized = s.topology.kind == topology_kind::erdos_renyi ||
                            s.topology.kind == topology_kind::random_regular;
    if (!randomized)
      throw error("scenario '" + s.name + "': topology cannot support f=" +
                  std::to_string(s.f) + " (needs n >= 3f+1, connectivity >= 2f+1)");
  }
  throw error("scenario '" + s.name +
              "': no feasible random topology in 32 attempts");
}

}  // namespace

run_record execute_scenario(const scenario& s, int run_index,
                            std::uint64_t sweep_seed, bool capture_trace,
                            bool capture_spans) {
  const std::uint64_t run_seed =
      derive_run_seed(sweep_seed, static_cast<std::uint64_t>(run_index));

  run_record rec;
  rec.run_index = run_index;
  rec.scenario = s.name;
  rec.family = s.family;
  rec.seed = run_seed;
  rec.topology = to_string(s.topology.kind);
  rec.f = s.f;
  rec.adversary = to_string(s.adversary);
  rec.propagation = to_string(s.propagation);
  rec.flag_protocol = to_string(s.flag_protocol);
  rec.claim_backend = to_string(s.claim_backend);
  rec.instances = s.instances;
  rec.words = s.words;
  rec.loss = s.loss;

  // Link-fault model: built per run (its chains are run state), seeded from
  // the run seed under its own salt, and installed ambiently so every
  // network the session constructs on this thread picks it up — drops are a
  // pure function of (seed, link, transmission index), bit-identical for
  // any --jobs. "none" attaches nothing; "zero" attaches an inert model
  // (the byte-identity guard).
  std::optional<sim::link_fault_model> fault_model;
  std::optional<sim::scoped_link_faults> fault_scope;
  if (s.loss != "none") {
    fault_model.emplace(sim::parse_loss_spec(s.loss),
                        splitmix64(run_seed ^ 0x1055eedULL));
    fault_scope.emplace(&*fault_model);
  }

  // The trace is thread-confined (this run only) and reduced into the
  // record's traffic matrix before return; every sim::network the session
  // constructs on this thread attaches it automatically.
  sim::trace run_trace;
  std::optional<sim::scoped_ambient_trace> trace_scope;
  if (capture_trace) trace_scope.emplace(&run_trace);
  const auto reduce_trace = [&](int universe) {
    if (!capture_trace) return;
    rec.traffic.assign(static_cast<std::size_t>(universe) * universe, 0);
    for (const sim::trace_event& e : run_trace.events())
      rec.traffic[static_cast<std::size_t>(e.from) * universe + e.to] += e.bits;
  };

  // Per-run observability collector, thread-confined like the trace. Every
  // run counts (the instrumentation is a TLS load + add per call site); the
  // span list is only retained when the caller asked for a timeline.
  obs::collector col;
  obs::scoped_collector col_scope(&col);
  const auto harvest_obs = [&] {
    rec.gf_axpy_words = col.value(obs::counter::gf_axpy_words);
    rec.gf_scale_words = col.value(obs::counter::gf_scale_words);
    rec.gf_mul_ops = col.value(obs::counter::gf_mul_ops);
    rec.gf_rows_eliminated = col.value(obs::counter::gf_rows_eliminated);
    rec.gf_ops = rec.gf_axpy_words + rec.gf_scale_words + rec.gf_mul_ops +
                 rec.gf_rows_eliminated;
    rec.cert_prefix_pushes = col.value(obs::counter::cert_prefix_pushes);
    rec.cert_prefix_pops = col.value(obs::counter::cert_prefix_pops);
    rec.cert_ghost_repushes = col.value(obs::counter::cert_ghost_repushes);
    rec.cert_subgraphs = col.value(obs::counter::cert_subgraphs);
    rec.cert_loo_downdates = col.value(obs::counter::cert_loo_downdates);
    rec.cache_lookups = col.value(obs::counter::cache_lookups);
    rec.plan_safety_checks = col.value(obs::counter::plan_safety_checks);
    rec.plan_flow_augmentations = col.value(obs::counter::plan_flow_augmentations);
    rec.route_pairs = col.value(obs::counter::route_pairs);
    rec.route_flow_augmentations = col.value(obs::counter::route_flow_augmentations);
    rec.claim_echoes = col.value(obs::counter::claim_echoes);
    rec.claim_readys = col.value(obs::counter::claim_readys);
    rec.link_drops = col.value(obs::counter::link_drops);
    rec.retransmits = col.value(obs::counter::link_retransmits);
    rec.burst_spans = col.value(obs::counter::link_burst_spans);
    rec.retry_budget_exhaustions = col.value(obs::counter::link_retry_exhaustions);
    rec.margin_quorum_slack = col.gauge_value(obs::gauge::quorum_slack);
    rec.margin_hold_surplus = col.gauge_value(obs::gauge::hold_surplus);
    rec.margin_retry_headroom = col.gauge_value(obs::gauge::retry_headroom);
    rec.timing.cache_hits = col.value(obs::counter::cache_hits);
    rec.timing.cache_misses = col.value(obs::counter::cache_misses);
    rec.timing.arena_allocs = col.value(obs::counter::arena_allocs);
    rec.timing.arena_pool_hits = col.value(obs::counter::arena_pool_hits);
    rec.timing.wall_by_phase = wall_by_phase_of(col.spans());
    if (capture_spans) rec.timing.spans = col.spans();
  };

  graph::digraph g = build_valid_topology(s, run_seed);
  rec.nodes = g.universe();

  // Pipelined propagation executes the Appendix-D schedule instead of the
  // general session driver: fault-free by construction (run_pipelined
  // aborts on any mismatch flag), so the corrupt set stays empty and the
  // dispute-side invariants hold vacuously. A non-honest adversary axis
  // would be silently ignored here — reject it so a sweep can never claim
  // to have exercised an adversary that never ran.
  if (s.propagation == core::propagation_mode::pipelined) {
    if (s.adversary != adversary_kind::honest)
      throw error("scenario '" + s.name +
                  "': pipelined propagation is fault-free (Appendix D) and "
                  "cannot carry adversary '" + to_string(s.adversary) + "'");
    // The Appendix-D schedule has no ARQ machinery: a perturbing fault
    // model would silently null honest chunks. An inert spec ("zero") is
    // allowed — it is exactly the guard that the attached hook changes
    // nothing.
    if (fault_model && !fault_model->params().inert())
      throw error("scenario '" + s.name +
                  "': pipelined propagation cannot run over lossy links "
                  "(loss spec '" + s.loss + "')");
    core::pipeline_config cfg;
    cfg.g = std::move(g);
    cfg.f = s.f;
    cfg.source = s.source;
    cfg.coding_seed = splitmix64(run_seed ^ 0x5eedULL);
    rng inputs(splitmix64(run_seed ^ 0x1235813ULL));
    const core::pipeline_stats stats =
        core::run_pipelined(cfg, s.instances, s.words, inputs);
    rec.gamma = stats.gamma;
    rec.rho = stats.rho;
    rec.sim_elapsed = stats.elapsed;
    rec.bits_broadcast = stats.bits;
    rec.throughput = stats.throughput();
    rec.tau_mean = stats.instances > 0
                       ? stats.elapsed / static_cast<double>(stats.instances)
                       : 0.0;
    rec.pipeline_depth = stats.depth;
    rec.pipeline_speedup = stats.speedup();
    rec.agreement = stats.all_agreed;
    rec.validity = stats.all_valid;
    reduce_trace(rec.nodes);
    harvest_obs();
    return rec;
  }

  // Hunted scenarios carry a serialized genome whose corrupt-set genes
  // (corrupt_source, corrupt_salt) fully determine the pick below — the
  // corrupt set is part of the searched strategy space, and deliberately
  // NOT mixed with the run seed: a hunted genome's invariant margins are a
  // pure function of (scenario, genome), so a promoted corpus entry records
  // the same margins at every sweep seed and run index. Hand-written
  // adversaries keep the seed-derived pick (coverage across instances).
  std::optional<hunt_genome> genome;
  if (s.adversary == adversary_kind::hunted)
    genome = hunt_genome::from_params(s.genome);

  rng pick_rand(genome
                    ? splitmix64(0xc0ffeeULL ^ splitmix64(static_cast<std::uint64_t>(
                                                   genome->corrupt_salt)))
                    : splitmix64(run_seed ^ 0xc0ffeeULL));
  const bool pin_source = s.adversary == adversary_kind::equivocate ||
                          (genome && genome->corrupt_source != 0);
  const std::vector<graph::node_id> corrupt =
      pick_corrupt(s, g.universe(), pick_rand, pin_source);
  rec.corrupt.assign(corrupt.begin(), corrupt.end());
  sim::fault_set faults(g.universe(), corrupt);

  // Minority victim for the equivocating source: the lowest non-source node.
  graph::node_id minority = s.source == 0 ? 1 : 0;
  const auto adv = make_adversary(s.adversary, splitmix64(run_seed ^ 0xadbeefULL),
                                  minority, s.genome);

  core::session_config cfg;
  cfg.g = g;
  cfg.f = s.f;
  cfg.source = s.source;
  cfg.coding_seed = splitmix64(run_seed ^ 0x5eedULL);
  cfg.propagation = s.propagation;
  cfg.flag_protocol = s.flag_protocol;
  cfg.claim_backend = s.claim_backend;
  cfg.certify_cost_limit = s.certify_cost_limit;
  cfg.pool_memory = s.pool_memory;

  // One run arena per executor shard (thread-confined, reused across every
  // run the shard executes): the steady-state sweep allocates nothing — each
  // session resets the arena between instances and leaves it empty. Arena
  // use never affects results (only their cost), so the jobs-1-vs-N
  // bit-identity contract is untouched.
  static thread_local sim::run_arena shard_arena;

  const core::session_run run = core::run_session(
      std::move(cfg), faults, adv.get(), s.instances, s.words,
      splitmix64(run_seed ^ 0x1235813ULL), s.rotate_sources, &shard_arena);

  // --- measured outcomes ---
  if (!run.reports.empty()) {
    rec.gamma = run.reports.front().gamma;
    rec.rho = run.reports.front().rho;
  }
  rec.sim_elapsed = run.stats.elapsed;
  rec.bits_broadcast = run.stats.bits_broadcast;
  rec.throughput = run.stats.throughput();
  rec.dispute_phases = run.stats.dispute_phases;
  rec.dc1_claim_bits = run.stats.claim_bits;
  rec.dc1_fallbacks = run.stats.claim_fallbacks;
  rec.disputes = static_cast<int>(run.disputes.pairs().size());
  rec.convictions = static_cast<int>(run.disputes.convicted().size());
  double tau_total = 0.0;
  for (const core::instance_report& r : run.reports) {
    tau_total += r.total_time();
    if (r.mismatch_announced) ++rec.mismatch_instances;
    if (r.phase1_only) ++rec.phase1_only_instances;
    if (r.default_outcome) ++rec.default_outcome_instances;
    rec.agreement = rec.agreement && r.agreement;
    rec.validity = rec.validity && r.validity;
  }
  rec.tau_mean = run.reports.empty()
                     ? 0.0
                     : tau_total / static_cast<double>(run.reports.size());

  // --- paper invariants (dispute soundness, conviction soundness, bound) ---
  for (const auto& [a, b] : run.disputes.pairs())
    if (faults.is_honest(a) && faults.is_honest(b)) rec.dispute_sound = false;
  for (graph::node_id v : run.disputes.convicted())
    if (faults.is_honest(v)) rec.conviction_sound = false;
  // The paper's f(f+1) bound counts dispute phases that *discover* evidence
  // (each either finds a new dispute or convicts). Erasures can trip the
  // mismatch flag without any Byzantine evidence to find, so on lossy runs
  // barren phases (no new disputes, no new convictions) are excluded from
  // the bound — the clean computation is kept bit-for-bit otherwise (a
  // chaos adversary can produce barren phases too, and those records must
  // not move).
  int effective_phases = rec.dispute_phases;
  if (s.loss != "none") {
    for (const core::instance_report& r : run.reports)
      if (r.dispute_phase_run && r.new_disputes.empty() && r.newly_convicted.empty())
        --effective_phases;
  }
  rec.dispute_bound = effective_phases <= s.f * (s.f + 1);
  // Dispute-bound headroom is runtime knowledge (the session does not know
  // the paper's f(f+1) budget is the scoring baseline). Like the quorum
  // gauges, it keeps the -1 "never exercised" sentinel on clean runs — an
  // honest run is not "full headroom", it never entered the machinery.
  if (effective_phases > 0)
    rec.margin_dispute_headroom =
        static_cast<std::int64_t>(s.f) * (s.f + 1) - effective_phases;

  reduce_trace(rec.nodes);
  harvest_obs();
  return rec;
}

std::vector<run_record> run_sweep(
    const std::vector<scenario>& sweep, std::uint64_t sweep_seed, int jobs,
    const std::function<void(const run_record&)>& on_done,
    std::vector<double>* run_wall_seconds, bool capture_traces,
    bool capture_spans) {
  std::vector<run_record> records(sweep.size());
  if (run_wall_seconds != nullptr) run_wall_seconds->assign(sweep.size(), 0.0);
  // Let cache fills fan out their per-sink/per-source inner loops up to the
  // sweep's own worker budget (results are worker-count-invariant).
  core::omega_cache::instance().set_fill_parallelism(jobs);
  std::mutex done_mu;
  parallel_for_each_index(jobs, sweep.size(), [&](std::size_t i) {
    const auto t0 = std::chrono::steady_clock::now();
    records[i] = execute_scenario(sweep[i], static_cast<int>(i), sweep_seed,
                                  capture_traces, capture_spans);
    if (run_wall_seconds != nullptr)
      (*run_wall_seconds)[i] =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
    if (on_done) {
      std::lock_guard<std::mutex> lock(done_mu);
      on_done(records[i]);
    }
  });
  return records;
}

}  // namespace nab::runtime
