#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "bb/claim_bcast.hpp"
#include "core/adversary.hpp"
#include "runtime/metrics.hpp"
#include "runtime/scenario.hpp"
#include "util/rng.hpp"

/// fleet --hunt: deterministic, sharded, coverage-guided adversary search.
///
/// The fleet's hand-written strategies (core/strategies.hpp) bound our
/// confidence in the paper's dispute machinery by our own imagination. The
/// hunt closes that gap: the full strategy space the adversary model allows
/// — which phase to attack, equivocation/garble patterns, the collapsed
/// claim backend's digest-equivocation / echo-suppression / forged-retrieval
/// hooks, even the corrupt-set choice — is parameterized as a serializable
/// `hunt_genome`, evaluated in cheap batches across the work-stealing
/// executor, and scored by *minimizing* the PR-5 invariant-margin gauges
/// (margin_quorum_slack / margin_hold_surplus / margin_dispute_headroom):
/// smaller margin = the run was driven closer to the edge where a quorum
/// rule or the paper's f(f+1) dispute bound would have failed. An actual
/// invariant violation is the jackpot the search exists to find (and CI
/// asserts it never does).
///
/// Novelty detection keeps the search exploring instead of re-finding one
/// basin: every evaluation folds its deterministic obs counters and gauges
/// into an obs::signature_mix behavioral signature, and genomes that reach
/// a never-seen signature enter the corpus even when their score does not
/// improve on any champion.
///
/// Determinism contract (the same one the fleet sweep honors): every
/// evaluation seed derives from (hunt seed, evaluation index) by splitmix64,
/// and all mutation/crossover/selection decisions draw from a single
/// splitmix64-seeded stream on the coordinating thread, ordered by
/// evaluation index — never by completion order — so the corpus is
/// byte-identical across `--jobs 1` and `--jobs N`.
///
/// The worst genomes found get *promoted*: checked into the scenario
/// registry as `hunted_*` presets (scenario::genome carries the serialized
/// genome) that tier-1 replays as regression tests forever. See docs/HUNT.md
/// for the schema, scoring, and promotion workflow.

namespace nab::runtime {

/// A point in adversary-strategy space. Every field is an integer so the
/// serialized forms (to_params / corpus JSON) round-trip exactly; rate
/// fields are levels in 0..255 meaning probability level/255 (0 = hook
/// behaves honestly, 255 = attacks on every invocation).
struct hunt_genome {
  // --- per-hook attack rates over the core adversary surface ---
  std::uint8_t p1_source = 0;        ///< garble chunks a corrupt source sends
  std::uint8_t p1_forward = 0;       ///< garble chunks a corrupt relay forwards
  std::uint8_t p2_lie = 0;           ///< garble Equality-Check coded symbols
  std::uint8_t flag_flip = 0;        ///< invert step-2.2 flags (forces DC)
  std::uint8_t claim_tamper = 0;     ///< tamper Phase-3 claim transcripts
  std::uint8_t input_lie = 0;        ///< tamper the DC1 source-input claim
  // --- collapsed claim-backend hooks (bb::claim_adversary) ---
  std::uint8_t digest_equivocate = 0;///< propose different payloads per receiver
  std::uint8_t digest_garble = 0;    ///< announce a digest != the payload's
  std::uint8_t echo_suppress = 0;    ///< withhold echoes (starve echo quorums)
  std::uint8_t ready_suppress = 0;   ///< withhold readys (squeeze accept slack)
  std::uint8_t retrieval_forge = 0;  ///< serve forged retrieval responses
  // --- patterns ---
  std::uint16_t xor_mask = 0xFFFF;   ///< garble pattern; 0 = fresh random words
  std::uint8_t victim_mode = 0;      ///< 0 = attack every receiver, 1 = only the
                                     ///< lowest-id active node (stealth shape)
  std::uint8_t corrupt_source = 0;   ///< nonzero pins the source into the
                                     ///< corrupt set (equivocation regime)
  std::uint8_t corrupt_salt = 0;     ///< perturbs the corrupt-set draw
  std::uint8_t noise_salt = 0;       ///< decorrelates the genome's rng stream

  bool operator==(const hunt_genome&) const = default;

  /// Compact fixed-order "key=value,..." form — what scenario::genome and
  /// the registry's hunted_* presets carry. from_params(to_params()) is the
  /// identity; from_params throws nab::error on any malformed input.
  std::string to_params() const;
  static hunt_genome from_params(std::string_view text);

  /// JSON object with one named integer member per field (corpus files).
  json to_json() const;
};

/// The genome, executed: an adversary driving every corrupt node, plus the
/// collapsed claim-backend hooks, with all randomness drawn from streams
/// derived from (run seed, genome.noise_salt) — replaying the same genome
/// under the same scenario and seed reproduces the run_record bit for bit.
class genome_adversary : public core::nab_adversary {
 public:
  genome_adversary(const hunt_genome& g, std::uint64_t seed);

  void on_instance_begin(int instance_index, const graph::digraph& gk) override;
  core::chunk phase1_source_chunk(int tree, graph::node_id to,
                                  const core::chunk& honest) override;
  core::chunk phase1_forward_chunk(int tree, graph::node_id from, graph::node_id to,
                                   const core::chunk& honest) override;
  core::coded_symbols phase2_coded(graph::node_id u, graph::node_id v,
                                   const core::coded_symbols& honest) override;
  bool phase2_flag(graph::node_id v, bool honest) override;
  core::node_claims phase3_claims(graph::node_id v,
                                  const core::node_claims& honest) override;
  std::vector<core::word> phase3_source_input(
      const std::vector<core::word>& honest) override;
  bb::claim_adversary* claim_bcast() override { return &claim_; }

 private:
  /// The collapsed-backend attack surface, driven by the same genome.
  class claim_hooks : public bb::claim_adversary {
   public:
    claim_hooks(const hunt_genome& g, std::uint64_t seed) : g_(g), rand_(seed) {}
    bb::value propose_payload(graph::node_id claimant, graph::node_id receiver,
                              const bb::value& honest) override;
    bb::claim_digest announce_digest(graph::node_id claimant, graph::node_id receiver,
                                     const bb::claim_digest& honest) override;
    std::optional<bb::claim_digest> echo_digest(
        graph::node_id participant, graph::node_id receiver, std::size_t q,
        const std::optional<bb::claim_digest>& honest) override;
    bool suppress_ready(graph::node_id participant, graph::node_id receiver,
                        std::size_t q) override;
    std::optional<bb::value> serve_retrieval(
        graph::node_id participant, graph::node_id requester, std::size_t q,
        const std::optional<bb::value>& honest) override;

   private:
    /// Structural strike decision, keyed on (actor, peer, instance, gene
    /// tag, noise_salt) — NOT drawn from the sequential stream. The claim
    /// layer's attack *pattern* (who gets equivocated, which readys are
    /// withheld) is therefore a pure function of the genome and topology:
    /// a promoted genome records the same margins under every run seed and
    /// run index, which is what makes corpus replay and the hunted_*
    /// regression presets exact. Only the *content* of forged payloads
    /// still comes from `rand_` (it never affects the margins).
    bool strike(std::uint8_t level, graph::node_id a, graph::node_id b,
                std::uint64_t q, std::uint64_t tag) const;

    const hunt_genome& g_;
    rng rand_;
  };

  bool strikes(std::uint8_t level) { return rand_.chance(level / 255.0); }
  bool targets(graph::node_id to) const {
    return g_.victim_mode == 0 || to == victim_;
  }

  hunt_genome g_;
  rng rand_;
  graph::node_id victim_ = -1;  ///< lowest active node this instance
  claim_hooks claim_;
};

/// One promoted or novelty-preserving search result. `run_index` is the
/// evaluation index whose derive_run_seed(corpus seed, run_index) seed the
/// entry was measured under — replay_entry reproduces the record exactly.
struct corpus_entry {
  std::string context;   ///< evaluation-context scenario name (see hunt_contexts)
  std::string gauge;     ///< championed gauge name; empty for novelty entries
  hunt_genome genome;
  int run_index = 0;
  std::uint64_t signature = 0;
  std::int64_t margin_quorum_slack = -1;
  std::int64_t margin_hold_surplus = -1;
  std::int64_t margin_dispute_headroom = -1;
  std::int64_t score = 0;  ///< margin_score of the evaluation (lower = worse case)
  bool ok = true;          ///< paper invariants held (false = a found violation)

  bool operator==(const corpus_entry&) const = default;
};

/// Everything a hunt persists: the settings that reconstruct its evaluation
/// contexts, per-(context, gauge) champions, first-seen novelty entries, and
/// any invariant violations (expected empty — each one is a repo bug the
/// hunt just found).
struct hunt_corpus {
  std::string families;
  std::uint64_t seed = 0;
  int budget = 0;
  std::uint64_t words = 16;
  int instances = 0;       ///< 0 = family default
  int evaluations = 0;
  int violations = 0;     ///< probes whose run broke a paper invariant
  int errors = 0;         ///< probes that threw (infeasible configurations)
  std::vector<corpus_entry> champions;
  std::vector<corpus_entry> novel;
  /// Every invariant-violating probe, in discovery order (champions keep
  /// only the per-gauge minima; a violation must never be crowded out).
  std::vector<corpus_entry> violators;

  bool operator==(const hunt_corpus&) const = default;
};

struct hunt_config {
  std::string families = "complete-f2,ablation-claims";
  std::uint64_t seed = 1;
  int budget = 2000;       ///< total scenario evaluations
  int population = 12;     ///< genomes alive per generation
  int jobs = 1;            ///< executor shards (corpus identical for any value)
  std::uint64_t words = 16;///< cheap payloads: the margins are size-oblivious
  int instances = 0;       ///< instances per evaluation (0 = family default)
};

/// The evaluation contexts a hunt probes: every distinct (topology, f > 0)
/// of the named families, with the adversary axis forced to `hunted` and the
/// claim backend forced to `collapsed` — the backend whose quorum machinery
/// carries the attackable margins. Deterministic, so a corpus's contexts are
/// reconstructible from its persisted settings. Throws nab::error when no
/// named family contributes a fault-tolerant context.
std::vector<scenario> hunt_contexts(std::string_view families,
                                    std::uint64_t words, int instances);

/// Runs the search. `log`, when set, receives one progress line per
/// generation (display only — never part of the determinism contract).
hunt_corpus run_hunt(const hunt_config& cfg,
                     const std::function<void(const std::string&)>& log = {});

/// Re-executes one corpus entry bit-for-bit (reconstructs its context from
/// the corpus settings, installs the genome, derives the same run seed).
run_record replay_entry(const hunt_corpus& corpus, const corpus_entry& entry);

/// Scalar search score of a record: the sum of its margin gauges with
/// never-exercised gauges (-1) penalized as +1000 — minimizing it drives
/// runs that both *reach* the quorum machinery and squeeze it. Lower =
/// closer to the edge.
std::int64_t margin_score(const run_record& rec);

/// Behavioral novelty signature of a record: its deterministic obs counters
/// (log2-bucketed so near-identical runs coincide), outcome tallies, and raw
/// margin gauges folded through obs::signature_mix. Identical across --jobs
/// counts because every input is.
std::uint64_t record_signature(const run_record& rec);

/// Corpus <-> JSON. corpus_document is emitted with the runtime's
/// deterministic json sink; corpus_from_text parses exactly that shape
/// (throws nab::error on malformed or format-drifted input — the golden
/// corpus under tests/runtime/data/ makes drift a conscious bump).
json corpus_document(const hunt_corpus& corpus);
hunt_corpus corpus_from_text(std::string_view text);

}  // namespace nab::runtime
