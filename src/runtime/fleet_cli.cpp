#include "runtime/fleet_cli.hpp"

#include "sim/link_faults.hpp"
#include "util/error.hpp"

namespace nab::runtime {

std::string fleet_usage() {
  return
      "usage: fleet [--list] [--scenario NAMES|all] [--jobs N] [--seed S]\n"
      "             [--json FILE] [--trace FILE] [--timeline FILE] [--quiet]\n"
      "             [--loss none|zero|light|bursty|heavy|pG,pB,pG2B,pB2G]\n"
      "       fleet --hunt [--hunt-families NAMES] [--budget N] [--population N]\n"
      "             [--hunt-words N] [--hunt-instances N] [--hunt-corpus FILE]\n"
      "             [--jobs N] [--seed S] [--quiet]\n";
}

std::uint64_t parse_u64_flag(const std::string& flag, const std::string& text) {
  if (text.empty() || text[0] == '-' || text[0] == '+')
    throw error("fleet: " + flag + " expects a non-negative integer, got '" +
                text + "'");
  std::uint64_t out = 0;
  for (char c : text) {
    if (c < '0' || c > '9')
      throw error("fleet: " + flag + " expects a non-negative integer, got '" +
                  text + "'");
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (out > (UINT64_MAX - digit) / 10)
      throw error("fleet: " + flag + " value '" + text + "' overflows");
    out = out * 10 + digit;
  }
  return out;
}

int parse_int_flag(const std::string& flag, const std::string& text) {
  const std::uint64_t v = parse_u64_flag(flag, text);
  if (v > 1'000'000)
    throw error("fleet: " + flag + " value '" + text + "' is out of range");
  return static_cast<int>(v);
}

fleet_options parse_fleet_args(const std::vector<std::string>& args) {
  fleet_options opt;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    const auto next = [&]() -> const std::string& {
      if (i + 1 >= args.size())
        throw error("fleet: " + a + " expects a value");
      return args[++i];
    };
    if (a == "--list") {
      opt.list = true;
    } else if (a == "--scenario") {
      opt.scenarios = next();
    } else if (a == "--jobs") {
      opt.jobs = parse_int_flag(a, next());
      if (opt.jobs < 1) opt.jobs = 1;
    } else if (a == "--seed") {
      opt.seed = parse_u64_flag(a, next());
    } else if (a == "--json") {
      opt.json_path = next();
    } else if (a == "--trace") {
      opt.trace_path = next();
    } else if (a == "--timeline") {
      opt.timeline_path = next();
    } else if (a == "--loss") {
      opt.loss = next();
      // Reject unknown/malformed specs at the CLI boundary, naming them;
      // "none" (strip loss) attaches no model and parses nothing.
      if (opt.loss != "none") sim::parse_loss_spec(opt.loss);
    } else if (a == "--quiet") {
      opt.quiet = true;
    } else if (a == "--hunt") {
      opt.hunt = true;
    } else if (a == "--hunt-families") {
      opt.hunt_families = next();
    } else if (a == "--budget") {
      opt.budget = parse_int_flag(a, next());
      if (opt.budget < 1)
        throw error("fleet: --budget must be at least 1");
    } else if (a == "--population") {
      opt.population = parse_int_flag(a, next());
      if (opt.population < 1)
        throw error("fleet: --population must be at least 1");
    } else if (a == "--hunt-words") {
      opt.hunt_words = parse_u64_flag(a, next());
      if (opt.hunt_words < 1)
        throw error("fleet: --hunt-words must be at least 1");
    } else if (a == "--hunt-instances") {
      opt.hunt_instances = parse_int_flag(a, next());
    } else if (a == "--hunt-corpus") {
      opt.corpus_path = next();
    } else {
      throw error("fleet: unknown flag '" + a + "'");
    }
  }
  return opt;
}

}  // namespace nab::runtime
