// Experiment E8 (Appendix A): Edmonds' theorem in action — gamma
// edge-disjoint unit-capacity spanning arborescences always pack when
// gamma = min_j MINCUT(G,1,j), and the packing respects link capacities.
// Sweeps random networks, validates every packing, and reports packing cost.

#include <chrono>
#include <cstdio>

#include "graph/generators.hpp"
#include "graph/maxflow.hpp"
#include "graph/tree_packing.hpp"
#include "util/rng.hpp"

int main() {
  using namespace nab;
  std::printf("E8: Appendix A — arborescence packing at rate gamma\n");
  std::printf("  %-24s %-7s %-7s %-10s %s\n", "graph", "gamma", "trees", "pack(ms)",
              "valid");
  rng rand(0xE8);
  int failures = 0;

  auto check = [&](const char* name, const graph::digraph& g) {
    const auto gamma = graph::broadcast_mincut(g, 0);
    if (gamma < 1) return;
    const auto start = std::chrono::steady_clock::now();
    const auto trees = graph::pack_arborescences(g, 0, static_cast<int>(gamma));
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    // Validate: spanning + capacity-respecting.
    bool valid = trees.size() == static_cast<std::size_t>(gamma);
    std::vector<graph::capacity_t> use(
        static_cast<std::size_t>(g.universe()) * g.universe(), 0);
    for (const auto& t : trees) {
      valid = valid && t.edges.size() == g.active_nodes().size() - 1;
      for (const auto& e : t.edges)
        use[static_cast<std::size_t>(e.from) * g.universe() + e.to] += 1;
    }
    for (const auto& e : g.edges())
      valid = valid &&
              use[static_cast<std::size_t>(e.from) * g.universe() + e.to] <= e.cap;
    if (!valid) ++failures;
    std::printf("  %-24s %-7lld %-7zu %-10.2f %s\n", name,
                static_cast<long long>(gamma), trees.size(), ms, valid ? "yes" : "NO");
  };

  check("paper_fig2", graph::paper_fig2());
  check("K5 unit", graph::complete(5));
  check("K6 cap2", graph::complete(6, 2));
  check("ring6 cap3", graph::ring(6, 3));
  check("dumbbell8 4/1", graph::dumbbell(8, 4, 1));
  check("weak-link K5 c=8", graph::complete_with_weak_link(5, 8));
  for (int i = 0; i < 6; ++i) {
    char name[32];
    std::snprintf(name, sizeof name, "ER n=6 seed%d", i);
    check(name, graph::erdos_renyi(6, 0.5, 1, 4, rand));
  }
  for (int i = 0; i < 3; ++i) {
    char name[32];
    std::snprintf(name, sizeof name, "ER n=8 seed%d", i);
    check(name, graph::erdos_renyi(8, 0.4, 1, 3, rand));
  }

  std::printf("E8 result: %s\n", failures == 0 ? "all packings valid" : "FAILURES");
  return failures == 0 ? 0 : 1;
}
