// Ablation A3: the classical-BB engine behind step 2.2. The paper only
// requires *some* capacity-oblivious BB for the 1-bit flags; its cost enters
// the O(n^alpha) term that large L amortizes. This bench compares the two
// engines the library ships — EIG (PSL'80, n > 3f, exponential messages) and
// phase-king (n > 4f, polynomial) — as n grows, and shows that either choice
// leaves end-to-end NAB throughput unchanged once L is large (the paper's
// point: the flag term is a constant in L).

#include <cstdio>

#include "bb/broadcast.hpp"
#include "core/session.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace {

double one_bit_cost(const nab::graph::digraph& g, int f, nab::bb::bb_protocol proto) {
  using namespace nab;
  sim::network net(g);
  sim::fault_set faults(g.universe());
  bb::channel_plan plan(g, f);
  const auto r = bb::broadcast_default(plan, net, faults, 0, {1}, f, 1, proto);
  return r.time;
}

}  // namespace

int main() {
  using namespace nab;
  std::printf("A3: classical-BB engine ablation (1-bit broadcast cost, f=1)\n");
  std::printf("  %-6s %-14s %-14s\n", "n", "EIG time", "phase-king time");
  for (int n : {5, 6, 8, 10, 12}) {
    const graph::digraph g = graph::complete(n);
    std::printf("  %-6d %-14.2f %-14.2f\n", n, one_bit_cost(g, 1, bb::bb_protocol::eig),
                one_bit_cost(g, 1, bb::bb_protocol::phase_king));
  }

  std::printf("\n  end-to-end NAB throughput vs L (K5, f=1, fault-free):\n");
  std::printf("  %-12s %-14s %-16s\n", "L (bits)", "throughput", "flag-time share");
  for (std::size_t words : {64, 256, 1024, 4096, 16384}) {
    core::session s({.g = graph::complete(5, 2), .f = 1}, sim::fault_set(5));
    rng rand(3);
    const auto reports = s.run_many(2, words, rand);
    double flag_share = 0;
    for (const auto& r : reports) flag_share += r.time_flags / r.total_time();
    flag_share /= static_cast<double>(reports.size());
    std::printf("  %-12zu %-14.3f %.1f%%\n", 16 * words, s.stats().throughput(),
                100.0 * flag_share);
  }
  std::printf("  (flag share -> 0 as L grows: the O(n^alpha) term amortizes, so the\n"
              "   classical-BB engine choice cannot affect asymptotic throughput)\n");
  return 0;
}
