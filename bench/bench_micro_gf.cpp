// M1: Galois-field and linear-algebra micro-benchmarks (google-benchmark).
// These underpin the Equality Check's per-bit cost: one GF(2^16) multiply
// per coefficient per slice.

#include <benchmark/benchmark.h>

#include "gf/gf256.hpp"
#include "gf/gf2_16.hpp"
#include "gf/gf2m.hpp"
#include "gf/linalg.hpp"
#include "gf/matrix.hpp"
#include "util/rng.hpp"

namespace {

template <class F>
void bm_mul(benchmark::State& state) {
  nab::rng rand(1);
  std::vector<typename F::value_type> xs(4096);
  for (auto& x : xs) x = static_cast<typename F::value_type>(rand.below(F::order));
  std::size_t i = 0;
  for (auto _ : state) {
    const auto a = xs[i % xs.size()];
    const auto b = xs[(i + 1) % xs.size()];
    benchmark::DoNotOptimize(F::mul(a, b));
    ++i;
  }
}
BENCHMARK(bm_mul<nab::gf::gf256>)->Name("gf256_mul");
BENCHMARK(bm_mul<nab::gf::gf2_16>)->Name("gf2_16_mul");
BENCHMARK(bm_mul<nab::gf::gf2m<16>>)->Name("gf2m16_mul_shiftadd");

template <class F>
void bm_inv(benchmark::State& state) {
  nab::rng rand(2);
  std::vector<typename F::value_type> xs(4096);
  for (auto& x : xs) x = static_cast<typename F::value_type>(1 + rand.below(F::order - 1));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(F::inv(xs[i % xs.size()]));
    ++i;
  }
}
BENCHMARK(bm_inv<nab::gf::gf2_16>)->Name("gf2_16_inv");
BENCHMARK(bm_inv<nab::gf::gf2m<16>>)->Name("gf2m16_inv_fermat");

void bm_axpy_backend(benchmark::State& state, nab::gf::gf_backend backend) {
  using F = nab::gf::gf2_16;
  if (!F::set_backend(backend)) {
    state.SkipWithError("backend unsupported on this CPU");
    return;
  }
  const auto n = static_cast<std::size_t>(state.range(0));
  nab::rng rand(5);
  std::vector<F::value_type> src(n), dst(n);
  for (auto& x : src) x = static_cast<F::value_type>(rand.below(F::order));
  for (auto& x : dst) x = static_cast<F::value_type>(rand.below(F::order));
  for (auto _ : state) {
    F::axpy(dst.data(), src.data(), 0x1b3f, n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 2);
  F::set_backend(nab::gf::gf_backend::scalar);
}
BENCHMARK_CAPTURE(bm_axpy_backend, scalar, nab::gf::gf_backend::scalar)
    ->Name("gf2_16_axpy_scalar")->Arg(64)->Arg(640)->Arg(4096);
BENCHMARK_CAPTURE(bm_axpy_backend, ssse3, nab::gf::gf_backend::ssse3)
    ->Name("gf2_16_axpy_ssse3")->Arg(64)->Arg(640)->Arg(4096);
BENCHMARK_CAPTURE(bm_axpy_backend, avx2, nab::gf::gf_backend::avx2)
    ->Name("gf2_16_axpy_avx2")->Arg(64)->Arg(640)->Arg(4096);
BENCHMARK_CAPTURE(bm_axpy_backend, neon, nab::gf::gf_backend::neon)
    ->Name("gf2_16_axpy_neon")->Arg(64)->Arg(640)->Arg(4096);

void bm_matrix_mul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  nab::rng rand(3);
  const auto a = nab::gf::matrix<nab::gf::gf2_16>::random(n, n, rand);
  const auto b = nab::gf::matrix<nab::gf::gf2_16>::random(n, n, rand);
  for (auto _ : state) benchmark::DoNotOptimize(a * b);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_matrix_mul)->Name("gf2_16_matrix_mul")->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void bm_matrix_rank(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  nab::rng rand(4);
  const auto a = nab::gf::matrix<nab::gf::gf2_16>::random(n, 2 * n, rand);
  for (auto _ : state) benchmark::DoNotOptimize(nab::gf::rank(a));
}
BENCHMARK(bm_matrix_rank)->Name("gf2_16_rank")->Arg(8)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
