// Experiment E4 (Theorems 2 + 3): on a sweep of networks, compute the exact
// gamma*, rho* = U_1/2, the Theorem-2 capacity upper bound min(gamma*, 2rho*),
// and the NAB throughput lower bound gamma* rho* / (gamma* + rho*); verify
// the achievable fraction is >= 1/3 always and >= 1/2 whenever
// gamma* <= rho* (Theorem 3). Then actually RUN fault-free NAB sessions at
// large L and check the measured throughput sits between the NAB bound for
// the realized instance rates and the capacity bound.

#include <algorithm>
#include <cstdio>
#include <string>

#include "core/capacity.hpp"
#include "core/session.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace {

int violations = 0;

void run_row(const std::string& name, const nab::graph::digraph& g, int f) {
  using namespace nab;
  const core::capacity_bounds b =
      core::compute_bounds(g, 0, f, core::gamma_mode::exhaustive);
  const double fraction =
      b.capacity_upper_bound > 0 ? b.nab_throughput_bound / b.capacity_upper_bound : 1.0;
  const double required = static_cast<double>(b.gamma_star) <= b.rho_star ? 0.5 : 1.0 / 3.0;
  const bool thm3_ok = fraction + 1e-9 >= required;
  if (!thm3_ok) ++violations;

  // Measured throughput of real (fault-free) runs at L = 64 KiB. The
  // realized per-instance rates gamma_1 >= gamma*, rho_1 >= rho* make the
  // measured value exceed the worst-case bound.
  core::session s({.g = g, .f = f}, sim::fault_set(g.universe()));
  rng rand(99);
  s.run_many(3, 4096, rand);
  const double measured = s.stats().throughput();
  const bool measured_ok = measured + 1e-9 >= b.nab_throughput_bound;
  if (!measured_ok) ++violations;

  std::printf(
      "  %-22s f=%d gamma*=%-3lld rho*=%-5.1f C_UB=%-6.1f T_nab>=%-6.2f "
      "frac=%.3f(>=%.3f %s) T_meas=%-6.2f %s\n",
      name.c_str(), f, static_cast<long long>(b.gamma_star), b.rho_star,
      b.capacity_upper_bound, b.nab_throughput_bound, fraction, required,
      thm3_ok ? "ok" : "VIOLATION", measured, measured_ok ? "ok" : "BELOW-BOUND");
}

}  // namespace

int main() {
  using namespace nab;
  std::printf("E4: Theorem 2/3 — NAB bound vs capacity upper bound (exact gamma*)\n");

  run_row("K4 unit", graph::complete(4, 1), 1);
  run_row("K4 cap4", graph::complete(4, 4), 1);
  run_row("K5 unit", graph::complete(5, 1), 1);
  run_row("K5 cap3", graph::complete(5, 3), 1);
  run_row("K4 weak-link", graph::complete_with_weak_link(4, 6), 1);

  rng rand(0xE4);
  for (int trial = 0; trial < 6; ++trial) {
    // Random 5-node graphs dense enough to be 3-connected; skip infeasible
    // draws (session construction throws).
    const graph::digraph g = graph::erdos_renyi(5, 0.8, 1, 6, rand);
    try {
      run_row("ER n=5 seed" + std::to_string(trial), g, 1);
    } catch (const std::exception& e) {
      std::printf("  ER n=5 seed%-15d skipped (%s)\n", trial, e.what());
    }
  }

  std::printf("E4 result: %s\n",
              violations == 0 ? "Theorem 3 fractions hold on every network"
                              : "VIOLATIONS FOUND");
  return violations == 0 ? 0 : 1;
}
