// Ablation A2: Phase-1 rate vs number of packed arborescences. The paper
// broadcasts at gamma_k = min_j MINCUT(G_k,1,j), the information-theoretic
// ceiling (Edmonds). Using fewer trees t < gamma sends L/t bits per tree and
// wastes capacity; this bench measures Phase-1 time against the tree count
// and confirms time = L/t with the knee exactly at gamma.

#include <cstdio>

#include "core/phase1.hpp"
#include "graph/generators.hpp"
#include "graph/maxflow.hpp"
#include "graph/tree_packing.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

int main() {
  using namespace nab;
  // Unit capacities so no two trees ever share a link: Phase-1 time is then
  // exactly L/t and the capacity story stays clean.
  const graph::digraph g = graph::complete(6, 1);
  const auto gamma = graph::broadcast_mincut(g, 0);
  std::printf("A2: tree-count ablation on K6(unit caps): gamma = %lld\n",
              static_cast<long long>(gamma));
  std::printf("  %-8s %-14s %-14s %s\n", "trees", "phase1 time", "L/t (theory)",
              "note");

  const std::size_t words = 2048;  // L = 32768 bits
  rng rand(0xAB2);
  std::vector<core::word> input(words);
  for (auto& w : input) w = static_cast<core::word>(rand.below(65536));

  for (int t = 1; t <= static_cast<int>(gamma) + 1; ++t) {
    if (t > gamma) {
      try {
        graph::pack_arborescences(g, 0, t);
        std::printf("  %-8d PACKED BEYOND GAMMA — Edmonds violated!\n", t);
      } catch (const nab::error&) {
        std::printf("  %-8d (infeasible, as Edmonds' theorem requires)\n", t);
      }
      continue;
    }
    const auto trees = graph::pack_arborescences(g, 0, t);
    sim::network net(g);
    sim::fault_set faults(g.universe());
    const auto r = core::run_phase1(net, g, faults, 0, input, trees);
    const double theory = 16.0 * static_cast<double>(words) / t;
    std::printf("  %-8d %-14.1f %-14.1f %s\n", t, r.time, theory,
                t == gamma ? "<- paper's operating point" : "");
  }
  return 0;
}
