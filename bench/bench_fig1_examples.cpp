// Experiment E1 (paper Figure 1): reproduces every number the paper states
// for its worked 4-node example — the per-node MINCUTs and gamma of Fig 1(a),
// and the Omega_k / U_k computation on Fig 1(b) after the {2,3} dispute.
//
// Paper (Section 2/3):
//   MINCUT(G,1,2) = MINCUT(G,1,4) = 2, MINCUT(G,1,3) = 3, gamma_k = 2.
//   With n=4, f=1 and nodes 2,3 in dispute: Omega_k = {1,2,4},{1,3,4}, U_k=2.

#include <cstdio>

#include "core/omega.hpp"
#include "graph/generators.hpp"
#include "graph/maxflow.hpp"
#include "graph/mincut.hpp"

namespace {

int failures = 0;

void row(const char* what, long long expected, long long measured) {
  const bool ok = expected == measured;
  if (!ok) ++failures;
  std::printf("  %-44s paper=%-6lld measured=%-6lld %s\n", what, expected, measured,
              ok ? "OK" : "MISMATCH");
}

}  // namespace

int main() {
  std::printf("E1: paper Figure 1 worked example (0-based node ids)\n");

  const nab::graph::digraph g = nab::graph::paper_fig1a();
  std::printf(" Fig 1(a):\n");
  row("MINCUT(G,1,2)", 2, nab::graph::min_cut_value(g, 0, 1));
  row("MINCUT(G,1,3)", 3, nab::graph::min_cut_value(g, 0, 2));
  row("MINCUT(G,1,4)", 2, nab::graph::min_cut_value(g, 0, 3));
  row("gamma_k", 2, nab::graph::broadcast_mincut(g, 0));

  std::printf(" Fig 1(b) — after dispute {2,3} (0-based {1,2}), n=4, f=1:\n");
  const nab::graph::digraph gb = nab::graph::paper_fig1b();
  nab::core::dispute_record record;
  record.add_dispute(1, 2);
  const auto omega = nab::core::omega_subgraphs(gb, 1, record);
  row("|Omega_k|", 2, static_cast<long long>(omega.size()));
  for (const auto& h : omega) {
    std::printf("    Omega_k member: {");
    for (std::size_t i = 0; i < h.size(); ++i)
      std::printf("%s%d", i ? "," : "", h[i] + 1);  // print 1-based like the paper
    std::printf("}\n");
  }
  row("U_k", 2, nab::core::compute_uk(gb, 1, record));
  row("rho_k = U_k/2", 1, nab::core::compute_rho(nab::core::compute_uk(gb, 1, record)));

  std::printf("E1 result: %s\n", failures == 0 ? "all values reproduced" : "MISMATCHES");
  return failures == 0 ? 0 : 1;
}
