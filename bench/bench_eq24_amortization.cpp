// Experiment E5 (Eq. 24-28): amortization of dispute control. A stealthy
// adversary burns one disputing pair per instance — the slowest-progress
// attack — yet dispute control runs at most f(f+1) times ever, so measured
// throughput over Q instances climbs back toward the fault-free rate as Q
// grows, and toward gamma*rho*/(gamma*+rho*) as L grows (the 1-bit-flag
// overhead O(n^alpha) amortizes in L).

#include <cstdio>

#include "core/capacity.hpp"
#include "core/session.hpp"
#include "core/strategies.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace {

void sweep_q(int n, int f, const std::vector<nab::graph::node_id>& corrupt,
             std::size_t words, int q_max) {
  using namespace nab;
  const graph::digraph g = graph::complete(n);
  const core::capacity_bounds b = core::compute_bounds(
      g, 0, f, n <= 5 ? core::gamma_mode::exhaustive : core::gamma_mode::incident_sets);
  std::printf("  K%d f=%d L=%zu bits: T_nab bound=%.3f (gamma*=%lld rho*=%.1f)\n", n, f,
              16 * words, b.nab_throughput_bound, static_cast<long long>(b.gamma_star),
              b.rho_star);
  std::printf("    %-6s %-10s %-12s %-14s %s\n", "Q", "disputes", "convicted",
              "throughput", "vs bound");
  for (int q = 1; q <= q_max; q *= 2) {
    sim::fault_set faults(n, corrupt);
    core::stealth_disputer adv;
    core::session s({.g = g, .f = f}, faults, &adv);
    rng rand(7);
    const auto reports = s.run_many(q, words, rand);
    bool all_ok = true;
    for (const auto& r : reports) all_ok = all_ok && r.agreement && r.validity;
    const double tput = s.stats().throughput();
    std::printf("    %-6d %-10d %-12zu %-14.3f %+6.1f%%  %s\n", q,
                s.stats().dispute_phases, s.disputes().convicted().size(), tput,
                100.0 * (tput / b.nab_throughput_bound - 1.0),
                all_ok ? "" : "AGREEMENT/VALIDITY BROKEN");
  }
}

}  // namespace

int main() {
  std::printf("E5: Eq. 24-28 — dispute-control amortization under the stealth attack\n");
  sweep_q(4, 1, {1}, 64, 128);    // L = 1 Kib
  sweep_q(4, 1, {1}, 1024, 128);  // L = 16 Kib: flag overhead amortizes too
  sweep_q(7, 2, {2, 5}, 64, 32);
  std::printf("  (dispute phases stay <= f(f+1); throughput climbs with Q and L)\n");
  return 0;
}
