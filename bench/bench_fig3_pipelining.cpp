// Experiment E7 (Figure 3 / Appendix D): with store-and-forward propagation,
// naive repetition pays `depth` hops of L/gamma on every instance, so the
// per-instance time grows with the network depth. Appendix D pipelines
// instances — instance i enters the pipe in round i and advances one hop per
// round, with distinct instances on distinct hop levels (Figure 3) — so at
// steady state one instance completes per round and throughput returns to
// the depth-independent Eq. (6) rate.
//
// This bench RUNS the pipeline (core/pipeline.hpp simulates the overlapped
// schedule with full link accounting) against back-to-back execution on
// path-of-cliques networks of growing depth.

#include <cstdio>

#include "core/pipeline.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

int main() {
  using namespace nab;
  std::printf("E7: Figure 3 — pipelined vs back-to-back NAB, store-and-forward links\n");
  std::printf("  (path-of-cliques, cluster 3, L = 65536 bits, Q = 24 instances)\n");
  std::printf("  %-6s %-7s %-14s %-14s %-10s %s\n", "hops", "depth", "T_sequential",
              "T_pipelined", "speedup", "correct");
  for (int hops : {2, 3, 4, 5, 6}) {
    const graph::digraph g = graph::path_of_cliques(hops, 3, 1);
    core::pipeline_config cfg{.g = g, .f = 1, .source = 0};
    rng rand(0xE7);
    const auto stats = core::run_pipelined(cfg, 24, 4096, rand);
    char speedup[16];
    std::snprintf(speedup, sizeof speedup, "%.2fx", stats.speedup());
    std::printf("  %-6d %-7d %-14.2f %-14.2f %-10s %s\n", hops, stats.depth,
                stats.sequential_throughput(), stats.throughput(), speedup,
                stats.all_valid ? "yes" : "NO");
  }
  std::printf("  (pipelined throughput is ~flat in depth while sequential decays —\n"
              "   the speedup approaches the pipe depth, reproducing Appendix D)\n");
  return 0;
}
