// M4: end-to-end engineering cost of simulating NAB instances (wall time,
// not simulated time) — how the library scales with n, L, and the dispute
// machinery. google-benchmark.

#include <benchmark/benchmark.h>

#include "core/nab.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace {

void bm_clean_instance(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::size_t words = static_cast<std::size_t>(state.range(1));
  nab::core::session s({.g = nab::graph::complete(n), .f = 1},
                       nab::sim::fault_set(n));
  nab::rng rand(1);
  std::vector<nab::core::word> input(words);
  for (auto& w : input) w = static_cast<nab::core::word>(rand.below(65536));
  for (auto _ : state) benchmark::DoNotOptimize(s.run_instance(input));
  state.SetLabel("n=" + std::to_string(n) + " L=" + std::to_string(16 * words));
}
BENCHMARK(bm_clean_instance)
    ->Name("session_clean_instance")
    ->Args({4, 64})
    ->Args({5, 64})
    ->Args({7, 64})
    ->Args({5, 1024})
    ->Args({5, 8192});

void bm_instance_under_attack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    nab::sim::fault_set faults(n, {1});
    nab::core::phase1_corruptor adv;
    nab::core::session s({.g = nab::graph::complete(n), .f = 1}, faults, &adv);
    nab::rng rand(2);
    state.ResumeTiming();
    benchmark::DoNotOptimize(s.run_many(2, 64, rand));
  }
}
BENCHMARK(bm_instance_under_attack)
    ->Name("session_with_dispute_control")
    ->Arg(4)
    ->Arg(5)
    ->Arg(7);

void bm_bounds(benchmark::State& state) {
  const auto g = nab::graph::complete(static_cast<int>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(nab::core::compute_bounds(g, 0, 1));
}
BENCHMARK(bm_bounds)->Name("capacity_bounds")->Arg(4)->Arg(5)->Arg(6);

void bm_certify(benchmark::State& state) {
  const auto g = nab::graph::complete(static_cast<int>(state.range(0)), 2);
  const auto uk = nab::core::compute_uk(g, 1, nab::core::dispute_record{});
  const auto cs = nab::core::coding_scheme::generate(
      g, static_cast<int>(nab::core::compute_rho(uk)), 5);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        nab::core::certify_coding(g, 1, nab::core::dispute_record{}, cs));
}
BENCHMARK(bm_certify)->Name("theorem1_certification")->Arg(4)->Arg(5)->Arg(6);

}  // namespace

BENCHMARK_MAIN();
