// M4: end-to-end engineering cost of simulating NAB instances (wall time,
// not simulated time) — how the library scales with n, L, and the dispute
// machinery. Self-timed; emits machine-readable JSON through the runtime
// metrics sink (BENCH_micro_session.json) alongside a human-readable table,
// so the perf trajectory is diffable across commits like BENCH_runtime.json.
//
// Alongside wall time, session benches report allocs_per_iter — heap
// allocations per iteration, counted by the operator-new interposition
// below. This is the arena PR's headline metric (the run arena eliminates
// >90% of per-instance allocations) and its regression trajectory.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bb/channels.hpp"
#include "core/nab.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/maxflow.hpp"
#include "graph/tree_packing.hpp"
#include "obs/obs.hpp"
#include "runtime/metrics.hpp"
#include "util/heap_alloc_counter.hpp"
#include "util/rng.hpp"

namespace {

using nab::util::heap_allocs;

using clock_type = std::chrono::steady_clock;

double seconds_since(clock_type::time_point t0) {
  return std::chrono::duration<double>(clock_type::now() - t0).count();
}

/// Runs `body` repeatedly until ~0.2s of wall time has accumulated (at
/// least 3 iterations) and returns mean seconds per iteration.
template <typename Body>
std::pair<double, int> measure(Body&& body) {
  const auto t0 = clock_type::now();
  int iters = 0;
  do {
    body();
    ++iters;
  } while (seconds_since(t0) < 0.2 || iters < 3);
  return {seconds_since(t0) / iters, iters};
}

struct result {
  std::string name;
  std::string label;
  double sec_per_iter = 0.0;
  int iterations = 0;
  /// Heap allocations per iteration (-1 = not measured for this bench).
  double allocs_per_iter = -1.0;
};

std::vector<nab::core::word> random_words(std::size_t n, nab::rng& rand) {
  std::vector<nab::core::word> out(n);
  for (auto& w : out) w = static_cast<nab::core::word>(rand.below(65536));
  return out;
}

result bench_clean_instance(int n, std::size_t words, bool pool_memory = true) {
  nab::core::session s({.g = nab::graph::complete(n), .f = 1,
                        .pool_memory = pool_memory},
                       nab::sim::fault_set(n));
  nab::rng rand(1);
  const auto input = random_words(words, rand);
  s.run_instance(input);  // warm-up: arena pages, channel plan, coding
  const std::uint64_t allocs_before = heap_allocs();
  auto [sec, iters] = measure([&] { s.run_instance(input); });
  result r{pool_memory ? "session_clean_instance" : "session_clean_instance_nopool",
           "n=" + std::to_string(n) + " L=" + std::to_string(16 * words), sec, iters};
  r.allocs_per_iter =
      static_cast<double>(heap_allocs() - allocs_before) / iters;
  return r;
}

result bench_instance_under_attack(int n) {
  // Dispute control mutates the session (convictions shrink G_k), so every
  // iteration needs a fresh session — but only the run_many call is timed,
  // matching the old google-benchmark Pause/ResumeTiming split.
  const auto t_start = clock_type::now();
  double measured = 0.0;
  int iters = 0;
  std::uint64_t measured_allocs = 0;
  do {
    nab::sim::fault_set faults(n, {1});
    nab::core::phase1_corruptor adv;
    nab::core::session s({.g = nab::graph::complete(n), .f = 1}, faults, &adv);
    nab::rng rand(2);
    const auto t0 = clock_type::now();
    const std::uint64_t a0 = heap_allocs();
    s.run_many(2, 64, rand);
    measured += seconds_since(t0);
    measured_allocs += heap_allocs() - a0;
    ++iters;
  } while (seconds_since(t_start) < 0.2 || iters < 3);
  result r{"session_with_dispute_control", "n=" + std::to_string(n),
           measured / iters, iters};
  r.allocs_per_iter = static_cast<double>(measured_allocs) / iters;
  return r;
}

/// Where an instance's wall time goes: the same clean-instance loop run
/// under an obs collector, reported as one row per depth-1 phase span
/// (phase1 / equality_check / flags on the clean path). The collector also
/// exercises the collection-on cost path, so a hot counter site showing up
/// here before sec/iter moves is the early warning.
std::vector<result> bench_phase_breakdown(int n, std::size_t words) {
  nab::core::session s({.g = nab::graph::complete(n), .f = 1},
                       nab::sim::fault_set(n));
  nab::rng rand(3);
  const auto input = random_words(words, rand);
  s.run_instance(input);  // warm-up: arena pages, channel plan, coding
  nab::obs::collector col;
  nab::obs::scoped_collector scope(&col);
  auto [sec, iters] = measure([&] { s.run_instance(input); });
  (void)sec;
  std::vector<result> rows;
  const std::string label =
      "n=" + std::to_string(n) + " L=" + std::to_string(16 * words);
  for (const auto& [phase, secs] : nab::runtime::wall_by_phase_of(col.spans()))
    rows.push_back({"session_phase/" + phase, label, secs / iters, iters});
  return rows;
}

/// One timed call — for the retired from-scratch reference paths, whose
/// per-iteration cost (seconds to minutes at frontier sizes) would dominate
/// the suite under the 0.2s/3-iteration loop.
template <typename Body>
std::pair<double, int> measure_once(Body&& body) {
  const auto t0 = clock_type::now();
  body();
  return {seconds_since(t0), 1};
}

/// The plan/route frontier shapes: hypercubes force real flow work (no
/// closed-form packing, emulated route pairs) and K_64 pins the
/// closed-form + all-direct fast paths.
nab::graph::digraph frontier_graph(const std::string& label) {
  if (label == "hypercube_d6") return nab::graph::hypercube(6, 2);
  if (label == "hypercube_d7") return nab::graph::hypercube(7, 2);
  return nab::graph::complete(64, 1);
}

result bench_pack(const std::string& label, bool reference) {
  const auto g = frontier_graph(label);
  const auto gamma =
      static_cast<int>(nab::graph::broadcast_mincut(g, 0));
  const auto [sec, iters] =
      reference ? measure_once([&] { nab::graph::pack_arborescences_reference(
                      g, 0, gamma); })
                : measure([&] { nab::graph::pack_arborescences(g, 0, gamma); });
  return {reference ? "pack_arborescences_reference" : "pack_arborescences",
          label, sec, iters};
}

result bench_build_routes(const std::string& label, bool reference) {
  const auto g = frontier_graph(label);
  const auto body = [&] {
    if (!reference) {
      nab::bb::channel_plan::build_routes(g, 1);
      return;
    }
    // The seed's shape: one cold node_disjoint_paths run per emulated pair.
    for (nab::graph::node_id u = 0; u < g.universe(); ++u)
      for (nab::graph::node_id v = 0; v < g.universe(); ++v)
        if (u != v && !g.has_edge(u, v))
          nab::graph::node_disjoint_paths(g, u, v, 3);
  };
  const auto [sec, iters] = reference ? measure_once(body) : measure(body);
  return {reference ? "build_routes_reference" : "build_routes", label, sec,
          iters};
}

result bench_bounds(int n) {
  const auto g = nab::graph::complete(n);
  auto [sec, iters] = measure([&] { nab::core::compute_bounds(g, 0, 1); });
  return {"capacity_bounds", "n=" + std::to_string(n), sec, iters};
}

result bench_certify(int n) {
  const auto g = nab::graph::complete(n, 2);
  const auto uk = nab::core::compute_uk(g, 1, nab::core::dispute_record{});
  const auto cs = nab::core::coding_scheme::generate(
      g, static_cast<int>(nab::core::compute_rho(uk)), 5);
  auto [sec, iters] = measure(
      [&] { nab::core::certify_coding(g, 1, nab::core::dispute_record{}, cs); });
  return {"theorem1_certification", "n=" + std::to_string(n), sec, iters};
}

}  // namespace

int main() {
  std::vector<result> results;
  for (auto [n, w] : {std::pair<int, std::size_t>{4, 64},
                      {5, 64},
                      {7, 64},
                      {5, 1024},
                      {5, 8192}})
    results.push_back(bench_clean_instance(n, w));
  // The unpooled heap path at the headline size — the arena's denominator.
  results.push_back(bench_clean_instance(7, 64, /*pool_memory=*/false));
  for (int n : {4, 5, 7}) results.push_back(bench_instance_under_attack(n));
  for (const result& r : bench_phase_breakdown(7, 64)) results.push_back(r);
  for (const char* shape : {"hypercube_d6", "hypercube_d7", "k64_complete"})
    results.push_back(bench_pack(shape, /*reference=*/false));
  // The d7 pack reference re-runs the from-scratch construction at
  // minutes-scale; d6 + K_64 document the before numbers.
  for (const char* shape : {"hypercube_d6", "k64_complete"})
    results.push_back(bench_pack(shape, /*reference=*/true));
  for (const char* shape : {"hypercube_d6", "hypercube_d7", "k64_complete"})
    results.push_back(bench_build_routes(shape, /*reference=*/false));
  for (const char* shape : {"hypercube_d6", "hypercube_d7"})
    results.push_back(bench_build_routes(shape, /*reference=*/true));
  for (int n : {4, 5, 6}) results.push_back(bench_bounds(n));
  for (int n : {4, 5, 6}) results.push_back(bench_certify(n));

  std::printf("%-34s %-16s %14s %8s %12s\n", "benchmark", "label", "sec/iter",
              "iters", "allocs/iter");
  for (const result& r : results) {
    std::printf("%-34s %-16s %14.6f %8d", r.name.c_str(), r.label.c_str(),
                r.sec_per_iter, r.iterations);
    if (r.allocs_per_iter >= 0)
      std::printf(" %12.0f", r.allocs_per_iter);
    std::printf("\n");
  }

  using nab::runtime::json;
  json runs = json::array();
  for (const result& r : results) {
    json j = json::object();
    j.set("name", json::str(r.name))
        .set("label", json::str(r.label))
        .set("sec_per_iter", json::num(r.sec_per_iter))
        .set("iterations", json::num(r.iterations));
    if (r.allocs_per_iter >= 0)
      j.set("allocs_per_iter", json::num(r.allocs_per_iter));
    runs.push(std::move(j));
  }
  json doc = json::object();
  doc.set("bench", json::str("micro_session")).set("runs", std::move(runs));
  const std::string path = "BENCH_micro_session.json";
  nab::runtime::write_json_file(path, doc);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
