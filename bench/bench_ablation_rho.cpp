// Ablation A1: the choice of rho_k. The paper sets rho_k = U_k/2 — the
// largest value whose correctness Theorem 1 can certify — because Equality
// Check time is L/rho_k (larger rho = shorter check). This bench sweeps rho
// on a fixed network and shows both effects:
//   (a) measured EC wall time falls as L/rho;
//   (b) Theorem 1's guarantee stops at U_k/2 — certification (exact GF rank
//       of every C_H) may keep passing slightly beyond it on
//       capacity-rich graphs, but eventually some candidate fault-free
//       subgraph H lacks the capacity for (n-f-1)*rho independent
//       combinations and the scheme is provably unsound. NAB operates at
//       the paper's certified point U_k/2.

#include <cstdio>

#include "core/certify.hpp"
#include "core/equality_check.hpp"
#include "core/omega.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

int main() {
  using namespace nab;
  const graph::digraph g = graph::complete(5, 2);
  const int f = 1;
  const auto uk = core::compute_uk(g, f, core::dispute_record{});
  std::printf("A1: rho ablation on K5(cap 2), f=1: U_k = %lld, paper's rho = U_k/2 = %lld\n",
              static_cast<long long>(uk), static_cast<long long>(uk / 2));
  std::printf("  (L fixed at 16 Kib; EC time should track L/rho until certification breaks)\n");
  std::printf("  %-6s %-12s %-14s %s\n", "rho", "certified", "EC time", "L/rho (theory)");

  const std::size_t words = 1024;  // L = 16384 bits
  rng seed_rand(0xAB1);
  for (int rho = 1; rho <= static_cast<int>(uk / 2) + 3; ++rho) {
    const auto cs = core::coding_scheme::generate(g, rho, seed_rand.next_u64());
    const auto cert = core::certify_coding(g, f, core::dispute_record{}, cs);

    sim::network net(g);
    sim::fault_set faults(g.universe());
    rng rand(7);
    std::vector<core::word> input(words);
    for (auto& w : input) w = static_cast<core::word>(rand.below(65536));
    std::vector<core::value_vector> values(static_cast<std::size_t>(g.universe()));
    for (graph::node_id v : g.active_nodes())
      values[static_cast<std::size_t>(v)] = core::value_vector::reshape(input, rho);
    const auto ec = core::run_equality_check(net, g, faults, cs, values);

    const double theory = 16.0 * static_cast<double>(words) / rho;
    std::printf("  %-6d %-12s %-14.1f %.1f%s\n", rho, cert.ok ? "yes" : "NO", ec.time,
                theory, rho > uk / 2 ? "   <- beyond U_k/2" : "");
  }
  std::printf("  (correct-and-fastest point is exactly rho = U_k/2, as the paper chooses)\n");
  return 0;
}
