// Experiment E2 (paper Figure 2): packs the two unit-capacity spanning
// arborescences into the Figure-2 network and verifies the paper's worked
// observation that link (1,2) is used by both trees, for a total usage of 2
// units — exactly its capacity. Also reproduces the undirected conversion of
// Fig 2(b).

#include <cstdio>

#include "graph/generators.hpp"
#include "graph/maxflow.hpp"
#include "graph/tree_packing.hpp"

int main() {
  std::printf("E2: paper Figure 2 spanning-tree packing (0-based node ids)\n");
  const nab::graph::digraph g = nab::graph::paper_fig2();
  const auto gamma = nab::graph::broadcast_mincut(g, 0);
  std::printf("  gamma = %lld (paper: 2)\n", static_cast<long long>(gamma));

  const auto trees = nab::graph::pack_arborescences(g, 0, static_cast<int>(gamma));
  long long link01 = 0;
  for (std::size_t t = 0; t < trees.size(); ++t) {
    std::printf("  tree %zu:", t);
    for (const auto& e : trees[t].edges) {
      std::printf(" (%d->%d)", e.from + 1, e.to + 1);  // 1-based like the paper
      if (e.from == 0 && e.to == 1) ++link01;
    }
    std::printf("\n");
  }
  std::printf("  usage of link (1,2): %lld units of capacity %lld (paper: 2 of 2)\n",
              link01, static_cast<long long>(g.cap(0, 1)));

  const nab::graph::ugraph u = nab::graph::to_undirected(g);
  std::printf("  undirected weights: ");
  for (const auto& e : u.edges())
    std::printf("{%d,%d}=%lld ", e.from + 1, e.to + 1, static_cast<long long>(e.cap));
  std::printf("\n");

  const bool ok = gamma == 2 && link01 == 2;
  std::printf("E2 result: %s\n", ok ? "packing matches the paper" : "MISMATCH");
  return ok ? 0 : 1;
}
