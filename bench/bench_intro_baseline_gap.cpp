// Experiment E6 (Section 1 claim): "one can easily construct example
// networks in which previously proposed algorithms achieve throughput that
// is arbitrarily worse than the optimal throughput."
//
// Construction: K_n with every link of capacity c except one weak unit link.
// A capacity-oblivious classical BB (here: PSL/EIG over direct links, the
// kind of algorithm the related work proposes) ships the full L-bit value
// across EVERY channel, so the weak link throttles each round to L time
// units and throughput stays O(1) no matter how large c is. NAB's Phase 1
// and Equality Check scale with gamma_k and rho_k ~ O(c): the measured gap
// grows linearly in c — i.e. unboundedly.

#include <cstdio>

#include "bb/broadcast.hpp"
#include "core/session.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace {

/// Throughput of L-bit classical BB (EIG) used directly as the broadcast
/// algorithm, on the given network.
double baseline_throughput(const nab::graph::digraph& g, int f, std::size_t words) {
  using namespace nab;
  sim::network net(g);
  sim::fault_set faults(g.universe());
  bb::channel_plan plan(g, f);
  rng rand(5);
  bb::value blob((words + 3) / 4);
  for (auto& w : blob) w = rand.next_u64();
  const auto r = bb::broadcast_default(plan, net, faults, 0, blob, f, 16 * words,
                                       bb::bb_protocol::eig);
  return 16.0 * static_cast<double>(words) / r.time;
}

double nab_throughput(const nab::graph::digraph& g, int f, std::size_t words) {
  using namespace nab;
  core::session s({.g = g, .f = f}, sim::fault_set(g.universe()));
  rng rand(6);
  s.run_many(4, words, rand);
  return s.stats().throughput();
}

}  // namespace

int main() {
  std::printf("E6: intro claim — NAB vs capacity-oblivious BB on a weak-link network\n");
  std::printf("  network: K5, all links capacity c, one unit link; L = 32768 bits\n");
  std::printf("  %-8s %-14s %-14s %s\n", "c", "T_baseline", "T_nab", "gap (x)");
  const std::size_t words = 2048;
  for (nab::graph::capacity_t c : {1, 4, 16, 64, 256}) {
    const auto g = nab::graph::complete_with_weak_link(5, c);
    const double base = baseline_throughput(g, 1, words);
    const double nab_t = nab_throughput(g, 1, words);
    std::printf("  %-8lld %-14.3f %-14.3f %.1fx\n", static_cast<long long>(c), base,
                nab_t, nab_t / base);
  }
  std::printf("  (the gap grows ~linearly in c: capacity-oblivious BB is arbitrarily\n"
              "   worse, exactly the paper's motivating claim)\n");
  return 0;
}
