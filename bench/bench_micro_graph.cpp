// M2/M3: graph-algorithm micro-benchmarks (google-benchmark) — the
// per-instance costs NAB pays when G_k changes: max-flow (gamma_k), global
// min cut (U_k via Stoer-Wagner), Gomory-Hu construction, and arborescence
// packing.

#include <benchmark/benchmark.h>

#include "graph/generators.hpp"
#include "graph/gomory_hu.hpp"
#include "graph/maxflow.hpp"
#include "graph/mincut.hpp"
#include "graph/tree_packing.hpp"
#include "util/rng.hpp"

namespace {

nab::graph::digraph make_er(int n, std::uint64_t seed) {
  nab::rng rand(seed);
  return nab::graph::erdos_renyi(n, 0.4, 1, 8, rand);
}

void bm_maxflow(benchmark::State& state) {
  const auto g = make_er(static_cast<int>(state.range(0)), 11);
  for (auto _ : state)
    benchmark::DoNotOptimize(nab::graph::min_cut_value(g, 0, g.universe() - 1));
}
BENCHMARK(bm_maxflow)->Name("dinic_mincut")->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void bm_broadcast_mincut(benchmark::State& state) {
  const auto g = make_er(static_cast<int>(state.range(0)), 12);
  for (auto _ : state) benchmark::DoNotOptimize(nab::graph::broadcast_mincut(g, 0));
}
BENCHMARK(bm_broadcast_mincut)->Name("gamma_k")->Arg(8)->Arg(16)->Arg(32);

void bm_stoer_wagner(benchmark::State& state) {
  const auto u = nab::graph::to_undirected(make_er(static_cast<int>(state.range(0)), 13));
  for (auto _ : state) benchmark::DoNotOptimize(nab::graph::global_min_cut(u));
}
BENCHMARK(bm_stoer_wagner)->Name("stoer_wagner")->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void bm_gomory_hu(benchmark::State& state) {
  const auto u = nab::graph::to_undirected(make_er(static_cast<int>(state.range(0)), 14));
  for (auto _ : state) benchmark::DoNotOptimize(nab::graph::gomory_hu_tree(u));
}
BENCHMARK(bm_gomory_hu)->Name("gomory_hu")->Arg(8)->Arg(16)->Arg(32);

void bm_pack(benchmark::State& state) {
  const auto g = nab::graph::complete(static_cast<int>(state.range(0)));
  const auto gamma = nab::graph::broadcast_mincut(g, 0);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        nab::graph::pack_arborescences(g, 0, static_cast<int>(gamma)));
}
BENCHMARK(bm_pack)->Name("edmonds_packing_Kn")->Arg(4)->Arg(5)->Arg(6)->Arg(7);

}  // namespace

BENCHMARK_MAIN();
