// M2/M3: graph-algorithm micro-benchmarks (google-benchmark) — the
// per-instance costs NAB pays when G_k changes: max-flow (gamma_k), global
// min cut (U_k via Stoer-Wagner), Gomory-Hu construction, and arborescence
// packing.

#include <benchmark/benchmark.h>

#include <vector>

#include "bb/channels.hpp"
#include "graph/connectivity.hpp"
#include "graph/generators.hpp"
#include "graph/gomory_hu.hpp"
#include "graph/maxflow.hpp"
#include "graph/mincut.hpp"
#include "graph/tree_packing.hpp"
#include "util/rng.hpp"

namespace {

nab::graph::digraph make_er(int n, std::uint64_t seed) {
  nab::rng rand(seed);
  return nab::graph::erdos_renyi(n, 0.4, 1, 8, rand);
}

void bm_maxflow(benchmark::State& state) {
  const auto g = make_er(static_cast<int>(state.range(0)), 11);
  for (auto _ : state)
    benchmark::DoNotOptimize(nab::graph::min_cut_value(g, 0, g.universe() - 1));
}
BENCHMARK(bm_maxflow)->Name("dinic_mincut")->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void bm_broadcast_mincut(benchmark::State& state) {
  const auto g = make_er(static_cast<int>(state.range(0)), 12);
  for (auto _ : state) benchmark::DoNotOptimize(nab::graph::broadcast_mincut(g, 0));
}
BENCHMARK(bm_broadcast_mincut)->Name("gamma_k")->Arg(8)->Arg(16)->Arg(32);

void bm_stoer_wagner(benchmark::State& state) {
  const auto u = nab::graph::to_undirected(make_er(static_cast<int>(state.range(0)), 13));
  for (auto _ : state) benchmark::DoNotOptimize(nab::graph::global_min_cut(u));
}
BENCHMARK(bm_stoer_wagner)->Name("stoer_wagner")->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void bm_gomory_hu(benchmark::State& state) {
  const auto u = nab::graph::to_undirected(make_er(static_cast<int>(state.range(0)), 14));
  for (auto _ : state) benchmark::DoNotOptimize(nab::graph::gomory_hu_tree(u));
}
BENCHMARK(bm_gomory_hu)->Name("gomory_hu")->Arg(8)->Arg(16)->Arg(32);

void bm_pack(benchmark::State& state) {
  const auto g = nab::graph::complete(static_cast<int>(state.range(0)));
  const auto gamma = nab::graph::broadcast_mincut(g, 0);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        nab::graph::pack_arborescences(g, 0, static_cast<int>(gamma)));
}
BENCHMARK(bm_pack)->Name("edmonds_packing_Kn")->Arg(4)->Arg(5)->Arg(6)->Arg(7);

// The plan/route frontier shapes: hypercubes force real flow work (no
// closed-form packing, emulated pairs in the route table) and K_64 pins the
// closed-form + all-direct fast paths.
nab::graph::digraph frontier_graph(int shape) {
  switch (shape) {
    case 6: return nab::graph::hypercube(6, 2);
    case 7: return nab::graph::hypercube(7, 2);
    default: return nab::graph::complete(64, 1);
  }
}

void bm_pack_frontier(benchmark::State& state) {
  const auto g = frontier_graph(static_cast<int>(state.range(0)));
  const auto gamma = nab::graph::broadcast_mincut(g, 0);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        nab::graph::pack_arborescences(g, 0, static_cast<int>(gamma)));
}
BENCHMARK(bm_pack_frontier)
    ->Name("pack_arborescences_frontier")
    ->Arg(6)
    ->Arg(7)
    ->Arg(64);

void bm_pack_frontier_reference(benchmark::State& state) {
  const auto g = frontier_graph(static_cast<int>(state.range(0)));
  const auto gamma = nab::graph::broadcast_mincut(g, 0);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        nab::graph::pack_arborescences_reference(g, 0, static_cast<int>(gamma)));
}
// The d7 reference row re-runs the from-scratch Lovász construction
// (minutes-scale); one iteration documents the before number without
// dominating the suite.
BENCHMARK(bm_pack_frontier_reference)
    ->Name("pack_arborescences_frontier_reference")
    ->Arg(6)
    ->Arg(64)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void bm_build_routes(benchmark::State& state) {
  const auto g = frontier_graph(static_cast<int>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(nab::bb::channel_plan::build_routes(g, 1));
}
BENCHMARK(bm_build_routes)->Name("build_routes_frontier")->Arg(6)->Arg(7)->Arg(64);

void bm_build_routes_reference(benchmark::State& state) {
  const auto g = frontier_graph(static_cast<int>(state.range(0)));
  const int n = g.universe();
  for (auto _ : state) {
    // The seed's shape: one cold node_disjoint_paths run per emulated pair.
    std::vector<std::vector<std::vector<nab::graph::node_id>>> routes(
        static_cast<std::size_t>(n));
    for (nab::graph::node_id u = 0; u < n; ++u)
      for (nab::graph::node_id v = 0; v < n; ++v) {
        if (u == v || g.has_edge(u, v)) continue;
        benchmark::DoNotOptimize(nab::graph::node_disjoint_paths(g, u, v, 3));
      }
    benchmark::DoNotOptimize(routes);
  }
}
BENCHMARK(bm_build_routes_reference)
    ->Name("build_routes_frontier_reference")
    ->Arg(6)
    ->Arg(7)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
