// Experiment E3 (Theorem 1): soundness of the Equality Check with random
// coding matrices. The theorem bounds the probability that a random scheme
// FAILS to detect unequal values by 2^{-L/rho} * C(n,n-f) * (n-f-1) * rho.
//
// To make misses observable we shrink the coefficient field to GF(2^m),
// m in {4,6,8,10}: the protocol run is otherwise identical, so the measured
// miss rate must track the 2^-m scaling of the bound (at GF(2^16), the
// production field, misses are unobservable — which is the point).
//
// Setup per trial: complete graph K_n, one deviant node holds X' != X; a
// miss occurs when NO node's incoming-edge checks fail.

#include <cmath>
#include <cstdio>

#include "core/certify.hpp"
#include "gf/gf2m.hpp"
#include "gf/matrix.hpp"
#include "graph/generators.hpp"
#include "util/rng.hpp"

namespace {

/// One coded edge of capacity z between two nodes whose values differ in one
/// random symbol: the check misses iff (X_i - X_j) C_e = 0, which for random
/// C_e happens with probability exactly 2^{-m z} — the atomic event whose
/// union over edges, symbols and subgraphs is Theorem 1's bound.
template <class F>
bool edge_miss_once(int rho, int z, nab::rng& rand) {
  using mat = nab::gf::matrix<F>;
  std::vector<typename F::value_type> diff(static_cast<std::size_t>(rho), F::zero());
  const auto sym = static_cast<std::size_t>(rand.below(static_cast<std::uint64_t>(rho)));
  diff[sym] = static_cast<typename F::value_type>(1 + rand.below(F::order - 1));

  const mat ce = mat::random(static_cast<std::size_t>(rho), static_cast<std::size_t>(z),
                             rand);
  for (int k = 0; k < z; ++k) {
    typename F::value_type y = F::zero();
    for (int s = 0; s < rho; ++s)
      y = F::add(y, F::mul(diff[static_cast<std::size_t>(s)],
                           ce.at(static_cast<std::size_t>(s), static_cast<std::size_t>(k))));
    if (y != F::zero()) return false;  // detected
  }
  return true;
}

template <class F>
void sweep(int m, int rho, int z, int trials, nab::rng& rand) {
  int misses = 0;
  for (int t = 0; t < trials; ++t)
    if (edge_miss_once<F>(rho, z, rand)) ++misses;
  const double measured = static_cast<double>(misses) / trials;
  const double exact = std::pow(2.0, -static_cast<double>(m) * z);
  std::printf(
      "  m=%-3d rho=%-2d z=%-2d trials=%-8d miss=%-10.3e predicted 2^-mz=%-10.3e %s\n",
      m, rho, z, trials, measured, exact,
      std::abs(measured - exact) <= 5 * std::sqrt(exact / trials) + 1e-6
          ? "OK"
          : "DEVIATES");
}

}  // namespace

int main() {
  std::printf("E3: Theorem 1 — equality-check miss probability vs field size\n");
  std::printf("  (single coded edge, capacity z: P[miss] = 2^-mz exactly; Theorem 1\n");
  std::printf("   union-bounds this over every edge, symbol and subgraph in Omega_k)\n");
  nab::rng rand(0xE3);
  sweep<nab::gf::gf2m<4>>(4, 1, 1, 400000, rand);
  sweep<nab::gf::gf2m<4>>(4, 2, 1, 400000, rand);
  sweep<nab::gf::gf2m<4>>(4, 4, 1, 400000, rand);
  sweep<nab::gf::gf2m<6>>(6, 2, 1, 400000, rand);
  sweep<nab::gf::gf2m<8>>(8, 2, 1, 2000000, rand);
  sweep<nab::gf::gf2m<10>>(10, 2, 1, 4000000, rand);
  sweep<nab::gf::gf2m<4>>(4, 2, 2, 2000000, rand);
  sweep<nab::gf::gf2m<4>>(4, 2, 3, 4000000, rand);
  sweep<nab::gf::gf2m<6>>(6, 2, 2, 4000000, rand);

  // The production field: certify whole schemes (Theorem 1's exact
  // condition, checked by GF rank) — failures should essentially never
  // happen at 2^16.
  std::printf("  GF(2^16) certification of 100 random schemes on K5, f=1, rho=2: ");
  nab::rng seeds(0xC0DE);
  int ok = 0;
  const auto g = nab::graph::complete(5);
  for (int i = 0; i < 100; ++i) {
    const auto cs = nab::core::coding_scheme::generate(g, 2, seeds.next_u64());
    if (nab::core::certify_coding(g, 1, nab::core::dispute_record{}, cs).ok) ++ok;
  }
  std::printf("%d/100 certified (thm1 failure bound %.2e)\n", ok,
              nab::core::theorem1_failure_bound(5, 1, 2, 16));
  return 0;
}
